// Mixed-precision training: loss scaler dynamics, engine/oracle equivalence
// with FP16 wire format, overflow skipping, and convergence.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/loss_scaler.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

TEST(LossScaler, BacksOffOnOverflowAndRegrows) {
  LossScaler s({.initial_scale = 1024.0f,
                .growth_factor = 2.0f,
                .backoff_factor = 0.5f,
                .growth_interval = 3});
  EXPECT_FLOAT_EQ(s.scale(), 1024.0f);
  EXPECT_FALSE(s.update(true));  // overflow: skip + halve
  EXPECT_FLOAT_EQ(s.scale(), 512.0f);
  EXPECT_TRUE(s.update(false));
  EXPECT_TRUE(s.update(false));
  EXPECT_FLOAT_EQ(s.scale(), 512.0f);  // not yet grown
  EXPECT_TRUE(s.update(false));        // third good step: double
  EXPECT_FLOAT_EQ(s.scale(), 1024.0f);
  EXPECT_EQ(s.skipped_steps(), 1);
}

TEST(LossScaler, RespectsBounds) {
  LossScaler s({.initial_scale = 2.0f,
                .growth_factor = 2.0f,
                .backoff_factor = 0.5f,
                .growth_interval = 1,
                .max_scale = 4.0f,
                .min_scale = 1.0f});
  s.update(true);
  s.update(true);
  EXPECT_FLOAT_EQ(s.scale(), 1.0f);  // clamped at min
  s.update(false);
  s.update(false);
  s.update(false);
  EXPECT_FLOAT_EQ(s.scale(), 4.0f);  // clamped at max
}

nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

TEST(Fp16Engine, MatchesFp16MonolithicBitwise) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 90);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  TrainOptions opts;
  opts.fp16 = true;
  opts.loss_scaler.initial_scale = 128.0f;
  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{}, opts);
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.fp16 = true;
  ecfg.loss_scaler.initial_scale = 128.0f;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);

  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Fp16Engine, Fp16WithClippingMatchesOracle) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 91);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  TrainOptions opts;
  opts.fp16 = true;
  opts.clip_grad_norm = 0.05f;
  opts.loss_scaler.initial_scale = 64.0f;
  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{}, opts);
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.fp16 = true;
  ecfg.clip_grad_norm = 0.05f;
  ecfg.loss_scaler.initial_scale = 64.0f;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Fp16Engine, OverflowSkipsStepAndBacksOff) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.fp16 = true;
  // A loss scale beyond fp16 range guarantees overflow on the first step.
  ecfg.loss_scaler.initial_scale = 65536.0f * 32;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(7);
  std::vector<float> before;
  engine.snapshot_params(before);
  data::SyntheticCorpus corpus(mcfg.vocab, 8);
  engine.train_step(corpus.next_batch(2, mcfg.max_seq));
  std::vector<float> after;
  engine.snapshot_params(after);
  sh::testing::expect_allclose(after, before, 0.0f, 0.0f);  // step skipped
  const auto s = engine.stats();
  EXPECT_EQ(s.skipped_updates, 1u);
  EXPECT_LT(s.loss_scale, 65536.0f * 32);  // backed off
  EXPECT_EQ(s.optimizer_updates, 0u);
}

TEST(Fp16Engine, TrainingConvergesInMixedPrecision) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.fp16 = true;
  ecfg.adam.lr = 3e-3f;
  ecfg.loss_scaler.initial_scale = 256.0f;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(3);
  data::SyntheticCorpus corpus(mcfg.vocab, 5);
  std::vector<float> losses;
  for (int i = 0; i < 100; ++i) {
    losses.push_back(engine.train_step(corpus.next_batch(4, mcfg.max_seq)));
  }
  auto mean = [&](int lo, int hi) {
    float s = 0;
    for (int i = lo; i < hi; ++i) s += losses[static_cast<std::size_t>(i)];
    return s / (hi - lo);
  };
  EXPECT_LT(mean(90, 100), mean(0, 10) * 0.85f);
}

TEST(Fp16Engine, CloseToFp32Training) {
  // FP16-rounded training should track FP32 training loosely after a few
  // steps (same seed, same data).
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 92);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 5; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  auto run = [&](bool fp16) {
    nn::GptModel model(mcfg);
    EngineConfig ecfg;
    ecfg.window = 2;
    ecfg.fp16 = fp16;
    ecfg.loss_scaler.initial_scale = 128.0f;
    StrongholdEngine engine(model, ecfg);
    engine.init_params(42);
    float last = 0.0f;
    for (const auto& b : batches) last = engine.train_step(b);
    return last;
  };
  EXPECT_NEAR(run(true), run(false), 0.05f);
}

TEST(Fp16Engine, HalvedTransferBytesReported) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 93);
  auto bytes_for = [&](bool fp16) {
    nn::GptModel model(mcfg);
    EngineConfig ecfg;
    ecfg.window = 1;
    ecfg.fp16 = fp16;
    StrongholdEngine engine(model, ecfg);
    engine.init_params(1);
    engine.train_step(corpus.next_batch(2, mcfg.max_seq));
    std::vector<float> scratch;
    engine.snapshot_params(scratch);  // quiesce
    const auto s = engine.stats();
    return std::pair{s.h2d_bytes, s.d2h_bytes};
  };
  const auto [h16, d16] = bytes_for(true);
  const auto [h32, d32] = bytes_for(false);
  // Same transfer schedule; FP16 moves exactly half the wire bytes.
  EXPECT_EQ(2 * h16, h32);
  EXPECT_EQ(2 * d16, d32);
  EXPECT_GT(h16, 0u);
}

}  // namespace
}  // namespace sh::core

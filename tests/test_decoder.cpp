// KV-cached incremental decoding: step-by-step logits must match a full
// forward pass over the same prefix, across window sizes and MoE stacks.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

nn::GptConfig decoder_config(std::int64_t moe_experts = 0) {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 12;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 3;
  cfg.moe_experts = moe_experts;
  cfg.moe_every = 2;
  return cfg;
}

/// Full (non-cached) forward over the prefix; logits of the last position.
std::vector<float> full_forward_last(StrongholdEngine& engine,
                                     const std::vector<std::int32_t>& prefix,
                                     std::int64_t vocab) {
  const auto seq = static_cast<std::int64_t>(prefix.size());
  auto logits = engine.inference(prefix, {1, seq});
  std::vector<float> out(static_cast<std::size_t>(vocab));
  std::copy_n(logits.data() + (seq - 1) * vocab, vocab, out.data());
  return out;
}

class DecoderEquivalence : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DecoderEquivalence, IncrementalMatchesFullForward) {
  const auto mcfg = decoder_config(GetParam());
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(17);

  const std::vector<std::int32_t> sequence = {3, 7, 1, 12, 30, 5, 9, 0};
  auto dec = engine.make_decoder(1, mcfg.max_seq);

  // Prefill two tokens, then decode one at a time; compare against the full
  // forward over the growing prefix at every step.
  auto logits = dec.step({sequence.data(), 2}, 2);
  const std::int64_t vocab = mcfg.vocab;
  for (std::size_t t = 2; t <= sequence.size(); ++t) {
    std::vector<std::int32_t> prefix(sequence.begin(),
                                     sequence.begin() + static_cast<std::ptrdiff_t>(t));
    const auto ref = full_forward_last(engine, prefix, vocab);
    std::vector<float> inc(static_cast<std::size_t>(vocab));
    const auto rows = logits.shape().dim(0);
    std::copy_n(logits.data() + (rows - 1) * vocab, vocab, inc.data());
    sh::testing::expect_allclose(inc, ref, 1e-4f, 1e-3f);
    if (t < sequence.size()) {
      logits = dec.step({&sequence[t], 1}, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DenseAndMoe, DecoderEquivalence,
                         ::testing::Values(0, 2));

TEST(Decoder, GenerateIncrementalMatchesReferenceGreedyLoop) {
  const auto mcfg = decoder_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 5e-3f;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(4);
  data::SyntheticCorpus corpus(mcfg.vocab, 19);
  for (int i = 0; i < 40; ++i) {
    engine.train_step(corpus.next_batch(4, mcfg.max_seq));
  }

  const std::vector<std::int32_t> prompt = {5, 9};
  const std::size_t new_tokens = 8;
  const auto incremental = engine.generate_incremental(prompt, new_tokens);

  // Reference: greedy loop with a full forward over the exact prefix.
  std::vector<std::int32_t> reference(prompt.begin(), prompt.end());
  for (std::size_t i = 0; i < new_tokens; ++i) {
    const auto seq = static_cast<std::int64_t>(reference.size());
    auto logits = engine.inference(reference, {1, seq});
    const std::int64_t vocab = mcfg.vocab;
    const float* last = logits.data() + (seq - 1) * vocab;
    reference.push_back(static_cast<std::int32_t>(
        std::max_element(last, last + vocab) - last));
  }
  EXPECT_EQ(incremental, reference);
}

TEST(Decoder, PositionTracksConsumedTokens) {
  const auto mcfg = decoder_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 1;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(1);
  auto dec = engine.make_decoder(1, 8);
  EXPECT_EQ(dec.position(), 0);
  const std::vector<std::int32_t> ids = {1, 2, 3};
  dec.step(ids, 3);
  EXPECT_EQ(dec.position(), 3);
  dec.step({ids.data(), 1}, 1);
  EXPECT_EQ(dec.position(), 4);
}

TEST(Decoder, CapacityEnforced) {
  const auto mcfg = decoder_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 1;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(1);
  EXPECT_THROW(engine.make_decoder(1, 0), std::invalid_argument);
  EXPECT_THROW(engine.make_decoder(1, mcfg.max_seq + 1), std::invalid_argument);
  auto dec = engine.make_decoder(1, 3);
  const std::vector<std::int32_t> ids = {1, 2, 3, 4};
  EXPECT_THROW(dec.step(ids, 4), std::out_of_range);
  dec.step({ids.data(), 3}, 3);
  EXPECT_THROW(dec.step({ids.data(), 1}, 1), std::out_of_range);
}

TEST(Decoder, BatchedDecoding) {
  const auto mcfg = decoder_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(23);
  // Two rows decoded together must match the rows decoded separately.
  const std::vector<std::int32_t> row0 = {1, 4, 7};
  const std::vector<std::int32_t> row1 = {9, 2, 11};
  auto both = engine.make_decoder(2, 8);
  std::vector<std::int32_t> interleaved = {1, 4, 7, 9, 2, 11};
  auto logits = both.step(interleaved, 3);

  auto solo0 = engine.make_decoder(1, 8);
  auto l0 = solo0.step(row0, 3);
  auto solo1 = engine.make_decoder(1, 8);
  auto l1 = solo1.step(row1, 3);
  const std::int64_t vocab = mcfg.vocab;
  for (std::int64_t t = 0; t < 3; ++t) {
    for (std::int64_t c = 0; c < vocab; ++c) {
      EXPECT_NEAR(logits.at(t * vocab + c), l0.at(t * vocab + c), 1e-4f);
      EXPECT_NEAR(logits.at((3 + t) * vocab + c), l1.at(t * vocab + c), 1e-4f);
    }
  }
  // Training after decoding still works (caches do not corrupt training).
  data::SyntheticCorpus corpus(mcfg.vocab, 2);
  EXPECT_GT(engine.train_step(corpus.next_batch(2, mcfg.max_seq)), 0.0f);
}

}  // namespace
}  // namespace sh::core

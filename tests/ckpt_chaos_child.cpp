// Victim binary for test_ckpt's KillAndResume chaos tests: trains with
// periodic checkpoints until the parent SIGKILLs it. A plain executable —
// not a gtest — so the main suite reports zero skipped tests (the old
// in-binary victim TEST skipped itself on every normal run).
#include <cstdio>
#include <cstdlib>

#include "testing/ckpt_chaos.hpp"

int main() {
  const char* dir = std::getenv("SH_CKPT_CHILD_DIR");
  if (dir == nullptr) {
    std::fprintf(stderr,
                 "ckpt_chaos_child: SH_CKPT_CHILD_DIR not set; this binary "
                 "is spawned by test_ckpt's KillAndResume tests\n");
    return 2;
  }
  double throttle = 0.0;
  if (const char* t = std::getenv("SH_CKPT_CHILD_THROTTLE")) {
    throttle = std::atof(t);
  }
  sh::testing::ckpt_chaos::train_until_killed(dir, throttle);
  return 0;  // unreachable: the loop above only ends by signal
}

// Mixture-of-experts block: routing behaviour, gradients, and offloaded
// training equivalence for models with nonlinear structure (Section III-B).
#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "nn/moe.hpp"
#include "testing/util.hpp"

namespace sh::nn {
namespace {

using sh::tensor::Rng;
using sh::tensor::Tensor;
using sh::testing::check_gradient;
using sh::testing::ProjectionLoss;

TEST(MoeBlock, RejectsZeroExperts) {
  EXPECT_THROW(MoeBlock("moe", 8, 2, 0), std::invalid_argument);
}

TEST(MoeBlock, ParamCountCoversAllExperts) {
  MoeBlock moe("moe", 8, 2, 3);
  TransformerBlock dense("blk", 8, 2);
  // gate (8*3 + 3) + 3 experts vs 1 MLP: MoE strictly larger.
  EXPECT_GT(moe.param_count(), dense.param_count());
  const std::int64_t mlp_params = Mlp("m", 8).param_count();
  EXPECT_EQ(moe.param_count(),
            dense.param_count() + 2 * mlp_params + (8 * 3 + 3));
}

TEST(MoeBlock, RoutingIsDeterministicAndConserved) {
  MoeBlock moe("moe", 8, 2, 4);
  OwnedStorage storage(moe.param_count());
  moe.bind(storage.params(), storage.grads());
  Rng rng(15);
  moe.init(rng);
  const BatchShape shape{2, 4};
  auto x = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(x.span(), 1.0f);
  (void)moe.forward(x, shape);
  const auto load1 = moe.expert_load();
  (void)moe.forward(x, shape);
  const auto load2 = moe.expert_load();
  EXPECT_EQ(load1, load2);
  EXPECT_EQ(std::accumulate(load1.begin(), load1.end(), std::int64_t{0}),
            shape.tokens());
}

TEST(MoeBlock, SingleExpertGradCheck) {
  // With one expert the gating is constant (p = 1) and the block is smooth,
  // so a full finite-difference check applies.
  MoeBlock moe("moe", 8, 2, 1);
  OwnedStorage storage(moe.param_count());
  moe.bind(storage.params(), storage.grads());
  Rng rng(16);
  moe.init(rng);
  const BatchShape shape{2, 3};
  auto x = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(x.span(), 1.0f);

  ProjectionLoss loss(shape.tokens() * 8);
  auto loss_fn = [&] { return loss.value(moe.forward(x, shape)); };
  storage.zero_grads();
  auto y = moe.forward(x, shape);
  auto gx = moe.backward(loss.grad(y.shape()), shape);
  check_gradient({storage.params(), static_cast<std::size_t>(storage.count())},
                 {storage.grads(), static_cast<std::size_t>(storage.count())},
                 loss_fn);
  check_gradient(x.span(), gx.span(), loss_fn);
}

TEST(MoeBlock, MultiExpertGradCheck) {
  // Routing is piecewise-constant; with the seed below no token sits near a
  // decision boundary, so central differences stay within one routing cell.
  MoeBlock moe("moe", 8, 2, 3);
  OwnedStorage storage(moe.param_count());
  moe.bind(storage.params(), storage.grads());
  Rng rng(17);
  moe.init(rng);
  const BatchShape shape{1, 4};
  auto x = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(x.span(), 1.0f);

  ProjectionLoss loss(shape.tokens() * 8);
  auto loss_fn = [&] { return loss.value(moe.forward(x, shape)); };
  storage.zero_grads();
  auto y = moe.forward(x, shape);
  auto gx = moe.backward(loss.grad(y.shape()), shape);
  check_gradient({storage.params(), static_cast<std::size_t>(storage.count())},
                 {storage.grads(), static_cast<std::size_t>(storage.count())},
                 loss_fn, 5e-4f, 3e-3f, 6e-2f);
  check_gradient(x.span(), gx.span(), loss_fn, 5e-4f, 3e-3f, 6e-2f);
}

TEST(MoeBlock, IdleExpertsGetNoGradient) {
  MoeBlock moe("moe", 8, 2, 8);  // more experts than tokens
  OwnedStorage storage(moe.param_count());
  moe.bind(storage.params(), storage.grads());
  Rng rng(18);
  moe.init(rng);
  const BatchShape shape{1, 3};
  auto x = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(x.span(), 1.0f);
  storage.zero_grads();
  auto y = moe.forward(x, shape);
  auto g = Tensor::full(y.shape(), 1.0f);
  moe.backward(g, shape);
  // At most 3 experts can be active; the rest must have exactly zero grads.
  int idle = 0;
  const auto& load = moe.expert_load();
  // Expert parameter region starts after ln1+attn+ln2+gate.
  const std::int64_t prefix = LayerNorm("a", 8).param_count() * 2 +
                              CausalSelfAttention("b", 8, 2).param_count() +
                              Linear("c", 8, 8).param_count();
  const std::int64_t per_expert = Mlp("m", 8).param_count();
  for (std::size_t e = 0; e < load.size(); ++e) {
    if (load[e] != 0) continue;
    ++idle;
    const float* g0 = storage.grads() + prefix +
                      static_cast<std::int64_t>(e) * per_expert;
    for (std::int64_t i = 0; i < per_expert; ++i) {
      ASSERT_EQ(g0[i], 0.0f) << "idle expert " << e << " got gradient";
    }
  }
  EXPECT_GE(idle, 5);
}

TEST(MoeModel, GptBuildsMixedStack) {
  GptConfig cfg;
  cfg.layers = 4;
  cfg.moe_experts = 2;
  cfg.moe_every = 2;
  GptModel model(cfg);
  // Blocks 1 and 3 (0-based) are MoE; layer units = emb + 4 + head.
  EXPECT_EQ(model.num_layers(), 6u);
  EXPECT_NE(dynamic_cast<MoeBlock*>(&model.layer(2)), nullptr);
  EXPECT_NE(dynamic_cast<MoeBlock*>(&model.layer(4)), nullptr);
  EXPECT_EQ(dynamic_cast<MoeBlock*>(&model.layer(1)), nullptr);
  // Heterogeneous layer sizes: MoE blocks are bigger.
  EXPECT_GT(model.layer(2).param_count(), model.layer(1).param_count());
}

TEST(MoeModel, OffloadedTrainingMatchesMonolithic) {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.moe_experts = 3;
  cfg.moe_every = 2;

  data::SyntheticCorpus corpus(cfg.vocab, 44);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(corpus.next_batch(2, cfg.max_seq));

  nn::GptModel ref_model(cfg);
  core::MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(cfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);

  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(MoeModel, LossDecreasesWithExperts) {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.moe_experts = 2;
  cfg.moe_every = 1;
  nn::GptModel model(cfg);
  core::EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.adam.lr = 3e-3f;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(9);
  data::SyntheticCorpus corpus(cfg.vocab, 10);
  std::vector<float> losses;
  for (int i = 0; i < 80; ++i) {
    losses.push_back(engine.train_step(corpus.next_batch(4, cfg.max_seq)));
  }
  auto mean = [&](int lo, int hi) {
    float s = 0;
    for (int i = lo; i < hi; ++i) s += losses[static_cast<std::size_t>(i)];
    return s / (hi - lo);
  };
  EXPECT_LT(mean(70, 80), mean(0, 10) * 0.85f);
}

}  // namespace
}  // namespace sh::nn

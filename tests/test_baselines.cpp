// The strategy simulators must reproduce the paper's headline comparisons:
// capacity ordering and throughput ratios on the V100 server (Figs. 1, 6a,
// 7a, 8a) and the cluster results (Figs. 6b, 12).
#include <gtest/gtest.h>

#include "baselines/cluster.hpp"
#include "baselines/l2l.hpp"
#include "baselines/megatron.hpp"
#include "baselines/stronghold_strategy.hpp"
#include "baselines/zero_infinity.hpp"
#include "baselines/zero_offload.hpp"

namespace sh::baselines {
namespace {

Workload workload_1p7b(double batch = 4.0) {
  Workload w;
  w.model = sim::table1_model(20, 2560);
  w.batch = batch;
  return w;
}

TEST(Capacity, MegatronMaxesNear1p7BOnV100) {
  const auto m = sim::v100_server();
  MegatronStrategy megatron;
  const double b = largest_trainable_billions(megatron, m, 2560, 1, 4.0);
  EXPECT_GT(b, 1.2);
  EXPECT_LT(b, 2.5);
}

TEST(Capacity, L2lAndZeroOffloadReachAboutSixBillion) {
  const auto m = sim::v100_server();
  const double l2l = largest_trainable_billions(L2lStrategy(), m, 2560, 1, 4.0);
  const double zoff =
      largest_trainable_billions(ZeroOffloadStrategy(), m, 2560, 1, 4.0);
  EXPECT_GT(l2l, 4.5);
  EXPECT_LT(l2l, 8.0);
  EXPECT_GT(zoff, 4.5);
  EXPECT_LT(zoff, 8.0);
}

TEST(Capacity, ZeroInfinityReachesAboutTwentyBillion) {
  const auto m = sim::v100_server();
  const double b =
      largest_trainable_billions(ZeroInfinityStrategy(), m, 2560, 1, 4.0);
  EXPECT_GT(b, 16.0);
  EXPECT_LT(b, 25.0);
}

TEST(Capacity, StrongholdReachesAboutFortyBillion) {
  const auto m = sim::v100_server();
  const double b =
      largest_trainable_billions(StrongholdStrategy(), m, 2560, 1, 4.0);
  EXPECT_GT(b, 35.0);
  EXPECT_LT(b, 45.0);
}

TEST(Capacity, PaperOrderingHoldsOnV100) {
  const auto m = sim::v100_server();
  const double megatron =
      largest_trainable_billions(MegatronStrategy(), m, 2560, 1, 4.0);
  const double l2l = largest_trainable_billions(L2lStrategy(), m, 2560, 1, 4.0);
  const double zinf =
      largest_trainable_billions(ZeroInfinityStrategy(), m, 2560, 1, 4.0);
  const double sh =
      largest_trainable_billions(StrongholdStrategy(), m, 2560, 1, 4.0);
  EXPECT_LT(megatron, l2l);
  EXPECT_LT(l2l, zinf);
  EXPECT_LT(zinf, sh);
  // Paper: 6.5x over L2L/ZeRO-Offload, 1.9x over ZeRO-Infinity.
  EXPECT_NEAR(sh / l2l, 6.5, 2.0);
  EXPECT_NEAR(sh / zinf, 1.9, 0.6);
}

TEST(Capacity, NvmeExtendsStrongholdToHalfATrillion) {
  const auto m = sim::v100_server();
  StrongholdStrategy sh({.use_nvme = true});
  const double b = largest_trainable_billions(sh, m, 5120, 1, 4.0, 16384);
  EXPECT_GT(b, 350.0);
  EXPECT_LT(b, 700.0);
}

TEST(Capacity, StrongholdMinimumGpuFootprintIsSmall) {
  // A 20.5B model needs only a slice of GPU memory under STRONGHOLD.
  const auto m = sim::v100_server();
  Workload w;
  w.model = sim::table1_model(260, 2560);
  w.batch = 4.0;
  const auto cap = StrongholdStrategy().capacity(w, m);
  EXPECT_TRUE(cap.fits);
  EXPECT_LT(cap.gpu_bytes, 0.5 * m.gpu.mem_bytes);
}

TEST(Throughput, Fig8aRatiosOnCommonModel) {
  const auto m = sim::v100_server();
  const auto w = workload_1p7b();
  const double megatron = MegatronStrategy().iteration(w, m, nullptr).throughput;
  const double l2l = L2lStrategy().iteration(w, m, nullptr).throughput;
  const double zoff = ZeroOffloadStrategy().iteration(w, m, nullptr).throughput;
  const double zinf = ZeroInfinityStrategy().iteration(w, m, nullptr).throughput;
  const double sh = StrongholdStrategy().iteration(w, m, nullptr).throughput;

  // L2L delivers ~22% of Megatron (paper: 22.2%).
  EXPECT_NEAR(l2l / megatron, 0.22, 0.08);
  // ZeRO-Offload and ZeRO-Infinity below 57%.
  EXPECT_LT(zoff / megatron, 0.60);
  EXPECT_GT(zoff / megatron, 0.30);
  EXPECT_LT(zinf / megatron, 0.60);
  EXPECT_GT(zinf / megatron, 0.25);
  // STRONGHOLD is the only offloading scheme beating Megatron.
  EXPECT_GT(sh / megatron, 1.05);
}

TEST(Throughput, StrongholdAchievesSixToNineTflopsOnV100) {
  const auto m = sim::v100_server();
  // Largest trainable model (Fig. 7a): ~39.5B.
  Workload w;
  w.model = sim::table1_model(500, 2560);
  w.batch = 8.0;
  const auto rep = StrongholdStrategy().iteration(w, m, nullptr);
  EXPECT_GT(rep.achieved_flops, 5.0e12);
  EXPECT_LT(rep.achieved_flops, 10.0e12);
}

TEST(Throughput, StrongholdTflopsFarExceedOtherOffloaders) {
  const auto m = sim::v100_server();
  // Each scheme on its own largest model, like Fig. 7a.
  Workload l2l_w;
  l2l_w.model = sim::table1_model(75, 2560);
  l2l_w.batch = 8.0;
  Workload zinf_w;
  zinf_w.model = sim::table1_model(260, 2560);
  zinf_w.batch = 8.0;
  Workload sh_w;
  sh_w.model = sim::table1_model(500, 2560);
  sh_w.batch = 8.0;
  const double l2l = L2lStrategy().iteration(l2l_w, m, nullptr).achieved_flops;
  const double zoff =
      ZeroOffloadStrategy().iteration(l2l_w, m, nullptr).achieved_flops;
  const double zinf =
      ZeroInfinityStrategy().iteration(zinf_w, m, nullptr).achieved_flops;
  const double sh =
      StrongholdStrategy().iteration(sh_w, m, nullptr).achieved_flops;
  // Paper Fig. 7a measures far larger ratios (SH 6-9 TF vs 0.5-1.9 TF); our
  // simulator reproduces the ordering and a >=2x gap (see EXPERIMENTS.md).
  EXPECT_GT(sh, 2.0 * l2l);
  EXPECT_GT(sh, 2.0 * zoff);
  EXPECT_GT(sh, 2.0 * zinf);
}

TEST(Throughput, NvmeStrongholdBeatsNvmeZeroInfinityByOver8x) {
  const auto m = sim::v100_server();
  Workload w;
  w.model = sim::table1_model(500, 2560);  // 39.4B
  w.batch = 4.0;
  const double zinf = ZeroInfinityStrategy(ZeroInfinityStrategy::Tier::Nvme)
                          .iteration(w, m, nullptr)
                          .throughput;
  const double sh = StrongholdStrategy({.use_nvme = true})
                        .iteration(w, m, nullptr)
                        .throughput;
  EXPECT_GT(sh / zinf, 8.0);
}

TEST(Window, AnalyticalModelPicksSmallWindowOnV100) {
  // Fig. 9: throughput plateaus by window ~8; the model should pick a
  // single-digit window for the 1.7B model.
  const auto m = sim::v100_server();
  const auto w = workload_1p7b();
  StrongholdStrategy sh;
  const auto d = sh.window_decision(w, m);
  EXPECT_TRUE(d.feasible);
  EXPECT_GE(d.m, 1u);
  EXPECT_LE(d.m, 10u);
}

TEST(Window, ThroughputPlateausWithWindowSize) {
  const auto m = sim::v100_server();
  const auto w = workload_1p7b();
  double prev = 0.0;
  for (std::size_t win : {1u, 2u, 4u, 8u}) {
    StrongholdStrategy sh({.fixed_window = win});
    const double thr = sh.iteration(w, m, nullptr).throughput;
    EXPECT_GE(thr, prev * 0.999);
    prev = thr;
  }
  // Window 16 gains little over window 8 (plateau).
  StrongholdStrategy sh8({.fixed_window = 8});
  StrongholdStrategy sh16({.fixed_window = 16});
  const double t8 = sh8.iteration(w, m, nullptr).throughput;
  const double t16 = sh16.iteration(w, m, nullptr).throughput;
  EXPECT_LT(t16 / t8, 1.1);
}

TEST(MultiStream, SpeedupOverMegatronInPaperRange) {
  // Fig. 11: at least 1.7x (up to 2.1x) over Megatron-LM.
  const auto m = sim::v100_server();
  MegatronStrategy megatron;
  StrongholdStrategy sh;
  for (double bs : {4.0, 8.0, 16.0}) {
    auto w = workload_1p7b(bs);
    const double ratio = sh.iteration(w, m, nullptr).throughput /
                         megatron.iteration(w, m, nullptr).throughput;
    EXPECT_GT(ratio, 1.4) << "bs=" << bs;
    EXPECT_LT(ratio, 2.4) << "bs=" << bs;
  }
}

TEST(MultiStream, DisabledFallsBackToSingleStream) {
  const auto m = sim::v100_server();
  const auto w = workload_1p7b(8.0);
  StrongholdStrategy on;
  StrongholdStrategy off({.multi_stream = false});
  EXPECT_EQ(off.stream_count(w, m), 1);
  EXPECT_GT(on.stream_count(w, m), 1);
  EXPECT_GT(on.iteration(w, m, nullptr).throughput,
            off.iteration(w, m, nullptr).throughput);
}

TEST(Ablation, EachOptimizationContributes) {
  // Fig. 14 directions: concurrent update ~1.5x, memory mgmt ~2.2x,
  // multi-stream ~2x, each toggled on top of the unoptimized scheme.
  const auto m = sim::v100_server();
  Workload w;
  w.model = sim::table1_model(50, 2560);  // the 4B model of Fig. 14
  w.batch = 4.0;
  StrongholdOptions none{.concurrent_update = false,
                         .user_level_memory = false,
                         .multi_stream = false,
                         .use_nvme = true};
  const double base =
      StrongholdStrategy(none).iteration(w, m, nullptr).throughput;

  auto with = [&](auto mutate) {
    StrongholdOptions o = none;
    mutate(o);
    return StrongholdStrategy(o).iteration(w, m, nullptr).throughput;
  };
  const double conc =
      with([](StrongholdOptions& o) { o.concurrent_update = true; });
  const double mem =
      with([](StrongholdOptions& o) { o.user_level_memory = true; });
  const double streams =
      with([](StrongholdOptions& o) { o.multi_stream = true; });
  EXPECT_GT(conc / base, 1.2);
  EXPECT_GT(mem / base, 1.5);
  EXPECT_GT(streams / base, 1.2);
}

TEST(Cluster, Fig6bCapacityOrdering) {
  const auto c = sim::a10_cluster();
  const double megatron = largest_trainable_billions_cluster(
      MegatronStrategy(), c, 5120, 4.0);
  const double zinf = largest_trainable_billions_cluster(
      ZeroInfinityStrategy(), c, 5120, 4.0);
  const double sh = largest_trainable_billions_cluster(
      StrongholdStrategy(), c, 5120, 4.0);
  EXPECT_LT(megatron, zinf);
  EXPECT_LT(zinf, sh);
  // Paper: ZeRO-Infinity 56.9B, STRONGHOLD 82.1B.
  EXPECT_NEAR(zinf, 56.9, 15.0);
  EXPECT_NEAR(sh, 82.1, 15.0);
}

TEST(Cluster, Fig12StrongholdBeatsZeroDp) {
  const auto c = sim::a10_cluster();
  Workload w;
  w.model = sim::table1_model(37, 2560);  // ~3B, largest ZeRO-2 model
  w.batch = 1.0;
  ZeroDpStrategy z2(ZeroDpStrategy::Stage::Two, c);
  ZeroDpStrategy z3(ZeroDpStrategy::Stage::Three, c);
  ASSERT_TRUE(z2.capacity(w, c.node).fits);
  const double z2t = z2.iteration(w, c.node, nullptr).throughput;
  const double z3t = z3.iteration(w, c.node, nullptr).throughput;
  const double sht = stronghold_dp_iteration(w, c).throughput;
  EXPECT_GT(sht / z2t, 2.0);
  EXPECT_GT(sht / z3t, 2.0);
}

TEST(Cluster, ZeroTwoCapsNearThreeBillion) {
  // Fig. 12 setup: 3B is the largest model ZeRO-2 supports on the cluster.
  const auto c = sim::a10_cluster();
  ZeroDpStrategy z2(ZeroDpStrategy::Stage::Two, c);
  const double b = largest_trainable_billions(z2, c.node, 2560, 1, 1.0);
  EXPECT_GT(b, 1.5);
  EXPECT_LT(b, 5.5);
}

TEST(Trace, StrongholdOverlapsTransfersWithCompute) {
  // Fig. 4: communication largely hidden under GPU computation.
  const auto m = sim::v100_server();
  Workload w;
  w.model = sim::table1_model(50, 2560);  // 4B model as in Fig. 4
  w.batch = 4.0;
  sim::Trace trace;
  StrongholdStrategy sh;
  (void)sh.iteration(w, m, &trace);
  EXPECT_GT(trace.overlap_fraction("d2h", "gpu"), 0.7);
  EXPECT_GT(trace.utilization("gpu"), 0.8);
}

TEST(Lineup, ContainsPaperBaselinesInOrder) {
  const auto v = single_gpu_lineup();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0]->name(), "Megatron-LM");
  EXPECT_EQ(v[1]->name(), "L2L");
  EXPECT_EQ(v[2]->name(), "ZeRO-Offload");
  EXPECT_EQ(v[3]->name(), "ZeRO-Infinity");
  EXPECT_EQ(v[4]->name(), "STRONGHOLD");
}

}  // namespace
}  // namespace sh::baselines

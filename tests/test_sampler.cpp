// Sampler unit tests: greedy/argmax agreement, top-k and top-p support
// restriction and mass, and determinism under a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "serve/sampler.hpp"

namespace sh::serve {
namespace {

TEST(Sampler, GreedyMatchesFirstArgmax) {
  tensor::Rng rng(1);
  SamplingParams greedy;  // temperature 0
  const std::vector<float> logits = {0.5f, 2.0f, -1.0f, 2.0f, 1.0f};
  // Ties break toward the lowest index, matching std::max_element.
  EXPECT_EQ(sample_token(logits, greedy, rng), 1);
  // Greedy consumes no randomness: the stream is untouched.
  tensor::Rng fresh(1);
  EXPECT_EQ(rng.next_u64(), fresh.next_u64());
}

TEST(Sampler, TopKRestrictsSupportAndPreservesRatios) {
  SamplingParams p;
  p.temperature = 1.0f;
  p.top_k = 3;
  // softmax of {3,2,1,0,-1}: top-3 = tokens {0,1,2}.
  const std::vector<float> logits = {3.0f, 2.0f, 1.0f, 0.0f, -1.0f};
  tensor::Rng rng(42);
  std::map<std::int32_t, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[sample_token(logits, p, rng)];
  for (const auto& [token, count] : counts) {
    EXPECT_LT(token, 3) << "sampled a token outside top-k";
    EXPECT_GT(count, 0);
  }
  // Renormalized expected mass of token 0 within {0,1,2}:
  // e^3 / (e^3 + e^2 + e^1) ≈ 0.665.
  const double p0 = static_cast<double>(counts[0]) / draws;
  EXPECT_NEAR(p0, 0.665, 0.02);
}

TEST(Sampler, TopPKeepsSmallestNucleus) {
  SamplingParams p;
  p.temperature = 1.0f;
  p.top_p = 0.6f;
  // softmax of {2,1,0,-1}: probs ≈ {0.644, 0.237, 0.087, 0.032}; the 0.6
  // nucleus is exactly {token 0}.
  const std::vector<float> logits = {2.0f, 1.0f, 0.0f, -1.0f};
  tensor::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sample_token(logits, p, rng), 0);
  }
  // A wider nucleus admits the second token too (cumulative mass after
  // token 1 is ≈ 0.881 ≥ 0.85).
  p.top_p = 0.85f;
  bool saw1 = false;
  for (int i = 0; i < 2000; ++i) {
    const auto t = sample_token(logits, p, rng);
    EXPECT_LE(t, 1) << "token outside the 0.85 nucleus";
    saw1 |= (t == 1);
  }
  EXPECT_TRUE(saw1);
}

TEST(Sampler, DeterministicUnderFixedSeed) {
  SamplingParams p;
  p.temperature = 0.8f;
  p.top_k = 8;
  p.top_p = 0.95f;
  std::vector<float> logits(16);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits[i] = std::sin(static_cast<float>(i) * 1.7f);
  }
  tensor::Rng a(123), b(123), c(456);
  std::vector<std::int32_t> sa, sb, sc;
  for (int i = 0; i < 64; ++i) {
    sa.push_back(sample_token(logits, p, a));
    sb.push_back(sample_token(logits, p, b));
    sc.push_back(sample_token(logits, p, c));
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

}  // namespace
}  // namespace sh::serve

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <vector>

#include "storage/swap_file.hpp"

namespace sh::storage {
namespace {

std::string tmp_path(const std::string& tag) {
  return ::testing::TempDir() + "swapfile_" + tag + ".bin";
}

TEST(SwapFile, WriteReadRoundTrip) {
  SwapFile swap(tmp_path("roundtrip"));
  std::vector<float> data(257);
  std::iota(data.begin(), data.end(), 0.0f);
  swap.write(1, data);
  std::vector<float> out(257, -1.0f);
  swap.read(1, out);
  EXPECT_EQ(out, data);
}

TEST(SwapFile, MultipleKeysGetDisjointRegions) {
  SwapFile swap(tmp_path("multikey"));
  std::vector<float> a(64, 1.0f), b(64, 2.0f), c(32, 3.0f);
  swap.write(10, a);
  swap.write(20, b);
  swap.write(30, c);
  EXPECT_EQ(swap.bytes_used(), (64u + 64u + 32u) * sizeof(float));
  std::vector<float> out(64);
  swap.read(10, out);
  EXPECT_EQ(out[0], 1.0f);
  swap.read(20, out);
  EXPECT_EQ(out[63], 2.0f);
}

TEST(SwapFile, RewriteUpdatesInPlace) {
  SwapFile swap(tmp_path("rewrite"));
  std::vector<float> v1(16, 1.0f), v2(16, 9.0f);
  swap.write(5, v1);
  const std::size_t used = swap.bytes_used();
  swap.write(5, v2);
  EXPECT_EQ(swap.bytes_used(), used);  // no new region
  std::vector<float> out(16);
  swap.read(5, out);
  EXPECT_EQ(out[7], 9.0f);
}

TEST(SwapFile, SizeMismatchThrows) {
  SwapFile swap(tmp_path("mismatch"));
  std::vector<float> v(16, 1.0f);
  swap.write(1, v);
  std::vector<float> wrong(8);
  EXPECT_THROW(swap.write(1, wrong), std::invalid_argument);
  EXPECT_THROW(swap.read(1, wrong), std::invalid_argument);
}

TEST(SwapFile, ReadUnknownKeyThrows) {
  SwapFile swap(tmp_path("unknown"));
  std::vector<float> out(4);
  EXPECT_THROW(swap.read(99, out), std::out_of_range);
}

TEST(SwapFile, CapacityEnforced) {
  SwapFile swap(tmp_path("capacity"), 100 * sizeof(float));
  std::vector<float> v(60, 1.0f);
  swap.write(1, v);
  EXPECT_THROW(swap.write(2, v), std::runtime_error);  // 120 > 100 floats
  EXPECT_TRUE(swap.contains(1));
  EXPECT_FALSE(swap.contains(2));
}

TEST(SwapFile, AsyncWritesAreFifoAndOverlapCaller) {
  SwapFile swap(tmp_path("async"), 0, 2e6);  // throttle: 2 MB/s
  std::vector<float> data(25000, 4.0f);      // 100 KB -> 0.05 s per op
  const auto t0 = std::chrono::steady_clock::now();
  auto f1 = swap.write_async(1, data);
  auto f2 = swap.write_async(2, data);
  const double submit =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(submit, 0.04);  // caller not blocked
  f1.get();
  f2.get();
  std::vector<float> out(25000);
  swap.read(2, out);
  EXPECT_EQ(out[100], 4.0f);
}

TEST(SwapFile, ManyKeysStress) {
  SwapFile swap(tmp_path("stress"));
  for (std::int64_t k = 0; k < 50; ++k) {
    std::vector<float> v(128, static_cast<float>(k));
    swap.write_async(k, v).get();
  }
  for (std::int64_t k = 49; k >= 0; --k) {
    std::vector<float> out(128);
    swap.read(k, out);
    EXPECT_EQ(out[0], static_cast<float>(k));
    EXPECT_EQ(out[127], static_cast<float>(k));
  }
}

}  // namespace
}  // namespace sh::storage

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <vector>

#include "storage/fault_plan.hpp"
#include "storage/swap_file.hpp"

namespace sh::storage {
namespace {

std::string tmp_path(const std::string& tag) {
  return ::testing::TempDir() + "swapfile_" + tag + ".bin";
}

/// A plan that faults every attempt (rate 1) of the selected kind, with
/// fast backoff, bounded so the retry budget always recovers.
FaultConfig faulty(FaultKind kind, IoOp op) {
  FaultConfig fc;
  fc.rate = 1.0;
  fc.seed = 7;
  fc.latency_weight = kind == FaultKind::LatencySpike ? 1.0 : 0.0;
  fc.short_weight = kind == FaultKind::ShortOp ? 1.0 : 0.0;
  fc.error_weight = kind == FaultKind::TransientError ? 1.0 : 0.0;
  fc.latency_spike_s = 1e-4;
  fc.max_faults_per_op = 2;  // attempts 0,1 fault; attempt 2 succeeds
  fc.max_attempts = 4;
  fc.backoff_initial_s = 1e-5;
  fc.fault_reads = op == IoOp::Read;
  fc.fault_writes = op == IoOp::Write;
  return fc;
}

TEST(SwapFile, WriteReadRoundTrip) {
  SwapFile swap(tmp_path("roundtrip"));
  std::vector<float> data(257);
  std::iota(data.begin(), data.end(), 0.0f);
  swap.write(1, data);
  std::vector<float> out(257, -1.0f);
  swap.read(1, out);
  EXPECT_EQ(out, data);
}

TEST(SwapFile, MultipleKeysGetDisjointRegions) {
  SwapFile swap(tmp_path("multikey"));
  std::vector<float> a(64, 1.0f), b(64, 2.0f), c(32, 3.0f);
  swap.write(10, a);
  swap.write(20, b);
  swap.write(30, c);
  EXPECT_EQ(swap.bytes_used(), (64u + 64u + 32u) * sizeof(float));
  std::vector<float> out(64);
  swap.read(10, out);
  EXPECT_EQ(out[0], 1.0f);
  swap.read(20, out);
  EXPECT_EQ(out[63], 2.0f);
}

TEST(SwapFile, RewriteUpdatesInPlace) {
  SwapFile swap(tmp_path("rewrite"));
  std::vector<float> v1(16, 1.0f), v2(16, 9.0f);
  swap.write(5, v1);
  const std::size_t used = swap.bytes_used();
  swap.write(5, v2);
  EXPECT_EQ(swap.bytes_used(), used);  // no new region
  std::vector<float> out(16);
  swap.read(5, out);
  EXPECT_EQ(out[7], 9.0f);
}

TEST(SwapFile, SizeMismatchIsTypedErrorAndRegionIntact) {
  // Regression for the rewrite-size footgun: a mismatched rewrite must be a
  // typed IoError raised before anything is queued — the stored bytes (and
  // the neighbouring region) stay intact.
  SwapFile swap(tmp_path("mismatch"));
  std::vector<float> v(16, 1.0f), neighbour(16, 5.0f);
  swap.write(1, v);
  swap.write(2, neighbour);
  std::vector<float> smaller(8), larger(24, 9.0f);
  const std::size_t used = swap.bytes_used();
  try {
    swap.write(1, larger);
    FAIL() << "mismatched rewrite did not throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::SizeMismatch);
    EXPECT_EQ(e.op(), IoOp::Write);
    EXPECT_EQ(e.key(), 1);
  }
  EXPECT_THROW(swap.write(1, smaller), IoError);
  EXPECT_THROW(swap.read(1, smaller), IoError);
  EXPECT_EQ(swap.bytes_used(), used);  // no region grew or moved
  std::vector<float> out(16);
  swap.read(1, out);
  EXPECT_EQ(out, v);
  swap.read(2, out);
  EXPECT_EQ(out, neighbour);
}

TEST(SwapFile, ReadUnknownKeyThrows) {
  SwapFile swap(tmp_path("unknown"));
  std::vector<float> out(4);
  try {
    swap.read(99, out);
    FAIL() << "unknown key did not throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::UnknownKey);
    EXPECT_EQ(e.key(), 99);
  }
}

TEST(SwapFile, CapacityEnforced) {
  SwapFile swap(tmp_path("capacity"), 100 * sizeof(float));
  std::vector<float> v(60, 1.0f);
  swap.write(1, v);
  try {
    swap.write(2, v);  // 120 > 100 floats
    FAIL() << "capacity overflow did not throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::CapacityExceeded);
  }
  EXPECT_TRUE(swap.contains(1));
  EXPECT_FALSE(swap.contains(2));
}

TEST(SwapFile, AsyncWritesAreFifoAndOverlapCaller) {
  SwapFile swap(tmp_path("async"), 0, 2e6);  // throttle: 2 MB/s
  std::vector<float> data(25000, 4.0f);      // 100 KB -> 0.05 s per op
  const auto t0 = std::chrono::steady_clock::now();
  auto f1 = swap.write_async(1, data);
  auto f2 = swap.write_async(2, data);
  const double submit =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(submit, 0.04);  // caller not blocked
  f1.get();
  f2.get();
  std::vector<float> out(25000);
  swap.read(2, out);
  EXPECT_EQ(out[100], 4.0f);
}

TEST(SwapFile, ManyKeysStress) {
  SwapFile swap(tmp_path("stress"));
  for (std::int64_t k = 0; k < 50; ++k) {
    std::vector<float> v(128, static_cast<float>(k));
    swap.write_async(k, v).get();
  }
  for (std::int64_t k = 49; k >= 0; --k) {
    std::vector<float> out(128);
    swap.read(k, out);
    EXPECT_EQ(out[0], static_cast<float>(k));
    EXPECT_EQ(out[127], static_cast<float>(k));
  }
}

// --- Fault injection ---------------------------------------------------------

struct FaultCase {
  FaultKind kind;
  IoOp op;
  bool async;
};

std::string fault_case_name(const ::testing::TestParamInfo<FaultCase>& info) {
  std::string name;
  switch (info.param.kind) {
    case FaultKind::LatencySpike: name = "Latency"; break;
    case FaultKind::ShortOp: name = "Short"; break;
    case FaultKind::TransientError: name = "Eio"; break;
    case FaultKind::None: name = "None"; break;
  }
  name += info.param.op == IoOp::Read ? "Read" : "Write";
  name += info.param.async ? "Async" : "Sync";
  return name;
}

class SwapFaultMatrix : public ::testing::TestWithParam<FaultCase> {};

TEST_P(SwapFaultMatrix, RecoversWithDataIntact) {
  const FaultCase& c = GetParam();
  SwapFile swap(tmp_path("matrix_" + fault_case_name({GetParam(), 0})), 0, 0.0,
                faulty(c.kind, c.op));
  // Three keyed ops per direction so the plan's per-(key,op) sequence and the
  // retry path both get exercised more than once.
  std::vector<std::vector<float>> blobs;
  for (std::int64_t k = 0; k < 3; ++k) {
    std::vector<float> v(256);
    std::iota(v.begin(), v.end(), static_cast<float>(k) * 1000.0f);
    if (c.async) {
      swap.write_async(k, v).get();
    } else {
      swap.write(k, v);
    }
    blobs.push_back(std::move(v));
  }
  for (std::int64_t k = 0; k < 3; ++k) {
    std::vector<float> out(256, -1.0f);
    if (c.async) {
      swap.read_async(k, out).get();
    } else {
      swap.read(k, out);
    }
    EXPECT_EQ(out, blobs[static_cast<std::size_t>(k)])
        << "corrupt data after recovery, key " << k;
  }

  // With rate 1 and max_faults_per_op 2, every op in the armed direction
  // faults on attempts 0 and 1 and recovers on attempt 2.
  const FaultPlan::Counters cnt = swap.fault_plan().counters();
  EXPECT_GT(cnt.faults_total, 0u);
  EXPECT_EQ(swap.io_errors(), 0u) << "all faults should have been recovered";
  switch (c.kind) {
    case FaultKind::LatencySpike:
      // The op still succeeds (just slowly): no retries consumed.
      EXPECT_EQ(cnt.latency_spikes, 3u);
      EXPECT_EQ(swap.retries_attempted(), 0u);
      break;
    case FaultKind::ShortOp:
      EXPECT_EQ(c.op == IoOp::Read ? cnt.short_reads : cnt.short_writes, 6u);
      EXPECT_EQ(c.op == IoOp::Read ? cnt.short_writes : cnt.short_reads, 0u);
      EXPECT_EQ(swap.retries_attempted(), 6u);
      EXPECT_GT(swap.retry_backoff_seconds(), 0.0);
      break;
    case FaultKind::TransientError:
      EXPECT_EQ(c.op == IoOp::Read ? cnt.eio_reads : cnt.eio_writes, 6u);
      EXPECT_EQ(c.op == IoOp::Read ? cnt.eio_writes : cnt.eio_reads, 0u);
      EXPECT_EQ(swap.retries_attempted(), 6u);
      EXPECT_GT(swap.retry_backoff_seconds(), 0.0);
      break;
    case FaultKind::None:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsOpsModes, SwapFaultMatrix,
    ::testing::Values(
        FaultCase{FaultKind::LatencySpike, IoOp::Read, false},
        FaultCase{FaultKind::LatencySpike, IoOp::Read, true},
        FaultCase{FaultKind::LatencySpike, IoOp::Write, false},
        FaultCase{FaultKind::LatencySpike, IoOp::Write, true},
        FaultCase{FaultKind::ShortOp, IoOp::Read, false},
        FaultCase{FaultKind::ShortOp, IoOp::Read, true},
        FaultCase{FaultKind::ShortOp, IoOp::Write, false},
        FaultCase{FaultKind::ShortOp, IoOp::Write, true},
        FaultCase{FaultKind::TransientError, IoOp::Read, false},
        FaultCase{FaultKind::TransientError, IoOp::Read, true},
        FaultCase{FaultKind::TransientError, IoOp::Write, false},
        FaultCase{FaultKind::TransientError, IoOp::Write, true}),
    fault_case_name);

TEST(FaultPlan, SameSeedSameDecisions) {
  FaultConfig fc;
  fc.rate = 0.5;
  fc.seed = 42;
  FaultPlan a(fc), b(fc);
  FaultConfig other = fc;
  other.seed = 43;
  FaultPlan c(other);
  std::size_t differing = 0;
  std::size_t faulted = 0;
  for (int i = 0; i < 200; ++i) {
    const IoOp op = (i % 3 == 0) ? IoOp::Write : IoOp::Read;
    const std::int64_t key = i % 5;
    const std::size_t attempt = static_cast<std::size_t>(i % 2);
    const FaultDecision da = a.decide(op, key, attempt);
    const FaultDecision db = b.decide(op, key, attempt);
    const FaultDecision dc = c.decide(op, key, attempt);
    EXPECT_EQ(da.kind, db.kind) << "op " << i;
    EXPECT_EQ(da.extra_latency_s, db.extra_latency_s) << "op " << i;
    EXPECT_EQ(da.short_fraction, db.short_fraction) << "op " << i;
    if (da.kind != dc.kind) ++differing;
    if (da.kind != FaultKind::None) ++faulted;
  }
  EXPECT_GT(faulted, 0u) << "rate 0.5 over 200 ops must inject something";
  EXPECT_GT(differing, 0u) << "a different seed must change the plan";
  EXPECT_EQ(a.counters().faults_total, b.counters().faults_total);
}

TEST(FaultPlan, ShortFractionIsProperPrefix) {
  FaultConfig fc;
  fc.rate = 1.0;
  fc.latency_weight = 0.0;
  fc.error_weight = 0.0;
  FaultPlan plan(fc);
  for (int i = 0; i < 100; ++i) {
    const FaultDecision d = plan.decide(IoOp::Read, i, 0);
    ASSERT_EQ(d.kind, FaultKind::ShortOp);
    EXPECT_GT(d.short_fraction, 0.0);
    EXPECT_LT(d.short_fraction, 1.0);
  }
}

TEST(SwapFile, FaultBudgetExhaustedIsTypedError) {
  // max_faults_per_op = SIZE_MAX models a permanently failing device: the
  // bounded retry budget runs out and the caller sees a typed IoError
  // instead of an abort or a silent hang.
  FaultConfig fc = faulty(FaultKind::TransientError, IoOp::Read);
  fc.max_faults_per_op = std::numeric_limits<std::size_t>::max();
  fc.max_attempts = 3;
  SwapFile swap(tmp_path("budget"), 0, 0.0, fc);
  std::vector<float> v(64, 2.0f);
  swap.write(1, v);  // writes stay healthy: the tier can be seeded
  std::vector<float> out(64, -1.0f);
  try {
    swap.read(1, out);
    FAIL() << "permanently failing read did not throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::FaultBudgetExhausted);
    EXPECT_EQ(e.op(), IoOp::Read);
    EXPECT_EQ(e.key(), 1);
    EXPECT_EQ(e.attempts(), 3u);
  }
  EXPECT_EQ(swap.io_errors(), 1u);
  EXPECT_EQ(swap.retries_attempted(), 2u);  // attempts 1 and 2
}

TEST(SwapFile, DroppedFutureFailureLatchedForRethrowPending) {
  // Fire-and-forget write-backs drop their futures; a permanent failure must
  // be latched and surface from rethrow_pending() instead of vanishing.
  FaultConfig fc = faulty(FaultKind::TransientError, IoOp::Write);
  fc.max_faults_per_op = std::numeric_limits<std::size_t>::max();
  fc.max_attempts = 2;
  SwapFile swap(tmp_path("latch"), 0, 0.0, fc);
  std::vector<float> v(64, 3.0f);
  { auto dropped = swap.write_async(1, v); }  // future discarded
  swap.wait_all();
  EXPECT_EQ(swap.io_errors(), 1u);
  try {
    swap.rethrow_pending();
    FAIL() << "latched failure was not rethrown";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::FaultBudgetExhausted);
    EXPECT_EQ(e.op(), IoOp::Write);
    EXPECT_EQ(e.key(), 1);
  }
  swap.rethrow_pending();  // take-and-clear: second poll is a no-op
}

TEST(SwapFile, JoinAsyncCarriesFirstFailure) {
  // LayerStore joins the params+opt pair through this: a failed first op
  // must not be masked by a healthy second op.
  FaultConfig fc = faulty(FaultKind::TransientError, IoOp::Read);
  fc.max_faults_per_op = std::numeric_limits<std::size_t>::max();
  fc.max_attempts = 2;
  SwapFile swap(tmp_path("join"), 0, 0.0, fc);
  std::vector<float> v(64, 4.0f);
  swap.write(1, v);
  std::vector<float> out(64, -1.0f);
  auto failing = swap.read_async(1, out);       // exhausts its budget
  auto healthy = swap.write_async(2, v);        // writes are not armed
  auto joined = swap.join_async({failing, healthy});
  EXPECT_THROW(joined.get(), IoError);
  healthy.get();  // the healthy op itself completed fine
  EXPECT_TRUE(swap.contains(2));
  // The latch records exhausted ops regardless of who holds the future.
  EXPECT_THROW(swap.rethrow_pending(), IoError);
}

TEST(SwapFile, HealthyPlanInjectsNothing) {
  SwapFile swap(tmp_path("healthy"), 0, 0.0, FaultConfig{});
  std::vector<float> v(128, 1.5f);
  for (std::int64_t k = 0; k < 4; ++k) swap.write(k, v);
  std::vector<float> out(128);
  for (std::int64_t k = 0; k < 4; ++k) swap.read(k, out);
  EXPECT_EQ(swap.fault_plan().counters().faults_total, 0u);
  EXPECT_EQ(swap.retries_attempted(), 0u);
  EXPECT_EQ(swap.io_errors(), 0u);
}

TEST(FaultConfig, EnvOverridesApply) {
  ::setenv("SH_FAULT_RATE", "0.25", 1);
  ::setenv("SH_FAULT_SEED", "123", 1);
  ::setenv("SH_FAULT_MAX_ATTEMPTS", "7", 1);
  FaultConfig fc = fault_config_from_env();
  EXPECT_DOUBLE_EQ(fc.rate, 0.25);
  EXPECT_EQ(fc.seed, 123u);
  EXPECT_EQ(fc.max_attempts, 7u);
  ::unsetenv("SH_FAULT_RATE");
  ::unsetenv("SH_FAULT_SEED");
  ::unsetenv("SH_FAULT_MAX_ATTEMPTS");
  FaultConfig base;
  base.rate = 0.5;
  EXPECT_DOUBLE_EQ(fault_config_from_env(base).rate, 0.5);
}

}  // namespace
}  // namespace sh::storage

// sh::serve equivalence and unit tests.
//
// The load-bearing property: continuous batching — including admissions,
// mixed prefill/decode steps and forced KV-arena preempt/resume — produces,
// for every request, exactly the token sequence of running that request
// ALONE through StrongholdEngine::generate_incremental with the same seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "serve/kv_arena.hpp"
#include "serve/scheduler.hpp"

namespace sh::serve {
namespace {

nn::GptConfig serve_model_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 16;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 3;
  return cfg;
}

std::vector<Request> eight_requests() {
  std::vector<Request> reqs;
  const std::vector<std::vector<std::int32_t>> prompts = {
      {3, 7}, {1}, {12, 30, 5}, {9, 0}, {4, 4, 4}, {22}, {17, 2}, {8, 19, 6}};
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    Request r;
    r.prompt = prompts[i];
    r.max_new_tokens = 10;
    r.sampling.temperature = 0.0f;  // greedy, as generate_incremental
    r.sampling.seed = 100 + i;
    reqs.push_back(r);
  }
  return reqs;
}

// Acceptance: >= 8 concurrent requests under a KV budget that forces
// preemption; every request's tokens are identical to the solo
// generate_incremental run.
TEST(Serve, ContinuousBatchingMatchesSoloGenerationAcrossPreemption) {
  const auto mcfg = serve_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(17);

  SchedulerConfig scfg;
  scfg.max_batch = 8;
  scfg.arena.chunk_tokens = 4;
  // Bytes per token: 2 (K+V) * blocks * hidden * 4 = 384. Eight sequences
  // at one 4-token chunk (12288 B) fit; growth to 3 chunks each (36864 B)
  // does not — decoding MUST preempt.
  scfg.arena.budget_bytes = 16000;
  Scheduler sched(engine, scfg);

  std::vector<std::uint64_t> ids;
  for (auto& r : eight_requests()) ids.push_back(sched.submit(r));
  sched.run_to_completion();

  EXPECT_GE(sched.arena_stats().preemptions, 1u)
      << "budget did not force a preemption; the test lost its teeth";
  EXPECT_GE(sched.arena_stats().resumes, 1u);
  EXPECT_EQ(sched.stats().finished, ids.size());

  const auto reqs = eight_requests();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto solo =
        engine.generate_incremental(reqs[i].prompt, reqs[i].max_new_tokens);
    EXPECT_EQ(sched.result(ids[i]), solo) << "request " << i;
  }
}

// Stochastic sampling is a function of the request alone: a serial
// (max_batch 1) schedule and a fully batched schedule with a tight arena
// produce identical tokens for identical seeds.
TEST(Serve, SampledDecodingIndependentOfBatchingAndPreemption) {
  const auto mcfg = serve_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(23);

  auto reqs = eight_requests();
  for (auto& r : reqs) {
    r.sampling.temperature = 0.9f;
    r.sampling.top_k = 12;
    r.sampling.top_p = 0.95f;
  }

  SchedulerConfig serial;
  serial.max_batch = 1;
  serial.arena.chunk_tokens = 4;
  serial.arena.budget_bytes = 1 << 20;
  Scheduler a(engine, serial);

  SchedulerConfig batched;
  batched.max_batch = 8;
  batched.arena.chunk_tokens = 4;
  batched.arena.budget_bytes = 16000;  // forces preemption, as above
  Scheduler b(engine, batched);

  std::vector<std::uint64_t> ids_a, ids_b;
  for (const auto& r : reqs) ids_a.push_back(a.submit(r));
  for (const auto& r : reqs) ids_b.push_back(b.submit(r));
  a.run_to_completion();
  b.run_to_completion();

  EXPECT_GE(b.arena_stats().preemptions, 1u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(a.result(ids_a[i]), b.result(ids_b[i])) << "request " << i;
  }
}

TEST(Serve, SubmitRejectsInfeasibleRequests) {
  const auto mcfg = serve_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 1;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(1);

  SchedulerConfig scfg;
  scfg.arena.chunk_tokens = 4;
  scfg.arena.budget_bytes = 4000;  // < one request at 12 tokens (4608 B)
  Scheduler sched(engine, scfg);

  Request r;
  r.prompt = {1, 2};
  r.max_new_tokens = 0;
  EXPECT_THROW(sched.submit(r), std::invalid_argument);
  r.max_new_tokens = 20;  // 22 > max_seq 16
  EXPECT_THROW(sched.submit(r), std::invalid_argument);
  r.max_new_tokens = 11;  // 12 fed tokens: KV footprint over the budget
  EXPECT_THROW(sched.submit(r), std::invalid_argument);
  r.max_new_tokens = 3;
  EXPECT_NO_THROW(sched.submit(r));
  Request dup;
  dup.id = 1;  // collides with the auto-assigned id above
  dup.prompt = {3};
  dup.max_new_tokens = 1;
  EXPECT_THROW(sched.submit(dup), std::invalid_argument);
}

TEST(Serve, SchedulerRecordsThroughputAndLatency) {
  const auto mcfg = serve_model_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(5);

  SchedulerConfig scfg;
  scfg.max_batch = 4;
  scfg.arena.budget_bytes = 1 << 20;
  Scheduler sched(engine, scfg);
  for (auto& r : eight_requests()) sched.submit(r);
  sched.run_to_completion();

  const auto& es = sched.serve_engine().stats();
  EXPECT_GT(es.steps, 0u);
  // 8 prompts of 2.125 tokens average, 8x9 decode feeds.
  EXPECT_EQ(es.prefill_tokens, 17u);
  EXPECT_EQ(es.decode_tokens, 72u);
  EXPECT_GT(es.tokens_per_s(), 0.0);
  EXPECT_GT(sched.serve_engine().latency_percentile(0.5), 0.0);
  EXPECT_GE(sched.serve_engine().latency_percentile(0.99),
            sched.serve_engine().latency_percentile(0.5));
  // Trace holds per-step serve spans and one span per finished request.
  std::size_t serve_spans = 0, request_spans = 0;
  for (const auto& span : sched.serve_engine().trace().spans()) {
    serve_spans += span.resource == "serve";
    request_spans += span.resource == "request";
  }
  EXPECT_EQ(serve_spans, es.steps);
  EXPECT_EQ(request_spans, 8u);
}

TEST(KvArena, AccountingAdmissionAndGrowth) {
  const auto mcfg = serve_model_config();
  KvArenaConfig cfg;
  cfg.chunk_tokens = 4;
  // 384 bytes/token -> 1536 per chunk per sequence.
  cfg.budget_bytes = 4000;
  KvArena arena(mcfg, cfg);
  EXPECT_EQ(arena.bytes_for(1), 1536u);
  EXPECT_EQ(arena.bytes_for(4), 1536u);
  EXPECT_EQ(arena.bytes_for(5), 3072u);

  EXPECT_TRUE(arena.try_reserve(1, 3));
  EXPECT_TRUE(arena.try_reserve(2, 2));
  EXPECT_EQ(arena.stats().bytes_in_use, 3072u);
  EXPECT_FALSE(arena.try_reserve(3, 1));  // 3 * 1536 > 4000
  EXPECT_TRUE(arena.try_reserve(1, 4));   // within the existing chunk
  EXPECT_FALSE(arena.try_reserve(1, 5));  // growth would exceed the budget
  arena.release(2);
  EXPECT_TRUE(arena.try_reserve(1, 5));  // now it fits
  EXPECT_EQ(arena.stats().grows, 1u);
  EXPECT_EQ(arena.stats().bytes_in_use, 3072u);
  EXPECT_EQ(arena.caches(1).size(), 3u);
  EXPECT_EQ(arena.caches(1)[0].capacity, 8);
}

TEST(KvArena, PreemptResumeRestoresRowsBitExactly) {
  const auto mcfg = serve_model_config();
  KvArenaConfig cfg;
  cfg.chunk_tokens = 4;
  cfg.budget_bytes = 1 << 20;
  KvArena arena(mcfg, cfg);
  ASSERT_TRUE(arena.try_reserve(7, 6));

  // Fill 5 live positions of every cache with a recognisable pattern.
  const std::int64_t live = 5;
  for (nn::KvCache& c : arena.caches(7)) {
    c.length = live;
    for (std::int64_t i = 0; i < c.k.numel(); ++i) {
      c.k.at(i) = static_cast<float>(i) * 0.25f;
      c.v.at(i) = static_cast<float>(i) * -0.5f;
    }
  }
  const auto before_k = arena.caches(7)[1].k.clone();
  const std::int64_t old_cap = arena.caches(7)[0].capacity;

  arena.preempt(7);
  EXPECT_EQ(arena.stats().bytes_in_use, 0u);
  EXPECT_TRUE(arena.preempted(7));
  EXPECT_FALSE(arena.resident(7));

  // Resume at a LARGER reservation: capacity changes, live rows must not.
  ASSERT_TRUE(arena.try_resume(7, 9));
  const auto caches = arena.caches(7);
  EXPECT_GT(caches[0].capacity, old_cap);
  EXPECT_EQ(caches[0].length, live);
  const std::int64_t head_dim = mcfg.hidden / mcfg.heads;
  for (std::int64_t h = 0; h < mcfg.heads; ++h) {
    for (std::int64_t t = 0; t < live; ++t) {
      for (std::int64_t d = 0; d < head_dim; ++d) {
        const auto src = (h * old_cap + t) * head_dim + d;
        const auto dst = (h * caches[1].capacity + t) * head_dim + d;
        EXPECT_EQ(caches[1].k.at(dst), before_k.at(src));
      }
    }
  }
  EXPECT_EQ(arena.stats().preemptions, 1u);
  EXPECT_EQ(arena.stats().resumes, 1u);
}

}  // namespace
}  // namespace sh::serve

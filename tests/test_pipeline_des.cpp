// Pipeline-parallel baseline and the DES cross-validation of the window
// schedule.
#include <gtest/gtest.h>

#include "baselines/megatron.hpp"
#include "baselines/pipeline.hpp"
#include "sim/des_replay.hpp"

namespace sh {
namespace {

using baselines::PipelineStrategy;
using baselines::Workload;

Workload big_model(std::int64_t layers = 80) {
  Workload w;
  w.model = sim::table1_model(layers, 2560);
  w.batch = 8.0;
  return w;
}

TEST(Pipeline, BubbleFractionFormula) {
  EXPECT_DOUBLE_EQ(PipelineStrategy(4, 12).bubble_fraction(), 3.0 / 15.0);
  EXPECT_DOUBLE_EQ(PipelineStrategy(1, 8).bubble_fraction(), 0.0);
}

TEST(Pipeline, MoreStagesFitBiggerModels) {
  const auto m = sim::v100_server();
  const auto w = big_model(80);  // ~6.3B: too big for one V100
  baselines::MegatronStrategy mono;
  EXPECT_FALSE(mono.capacity(w, m).fits);
  PipelineStrategy p4(4, 8);
  EXPECT_TRUE(p4.capacity(w, m).fits);
}

TEST(Pipeline, MoreMicroBatchesShrinkTheBubbleAtLargeBatch) {
  // With enough total batch, splitting finer amortises the (p-1)/m fill
  // bubble faster than it loses kernel occupancy.
  const auto m = sim::v100_server();
  auto w = big_model(80);
  w.batch = 64.0;
  const double t4 = PipelineStrategy(4, 4).iteration(w, m, nullptr).seconds;
  const double t16 = PipelineStrategy(4, 16).iteration(w, m, nullptr).seconds;
  EXPECT_LT(t16, t4);
}

TEST(Pipeline, TooManyMicroBatchesHurtOccupancy) {
  // At a small total batch, over-splitting starves the kernels (the classic
  // GPipe trade-off the paper's Section VII alludes to).
  const auto m = sim::v100_server();
  auto w = big_model(80);
  w.batch = 8.0;
  const double t4 = PipelineStrategy(4, 4).iteration(w, m, nullptr).seconds;
  const double t32 = PipelineStrategy(4, 32).iteration(w, m, nullptr).seconds;
  EXPECT_GT(t32, t4);
}

TEST(Pipeline, MoreStagesReducePerDeviceMemory) {
  const auto machine = sim::v100_server();
  const auto w = big_model(80);
  const double g2 = PipelineStrategy(2, 8).capacity(w, machine).gpu_bytes;
  const double g8 = PipelineStrategy(8, 8).capacity(w, machine).gpu_bytes;
  EXPECT_LT(g8, g2);
}

TEST(Pipeline, RejectsDegenerateConfig) {
  const auto machine = sim::v100_server();
  const auto w = big_model(16);
  EXPECT_THROW(PipelineStrategy(0, 4).capacity(w, machine),
               std::invalid_argument);
}

// --- DES cross-validation -----------------------------------------------

struct ReplayCase {
  std::size_t layers;
  std::size_t window;
  double t_compute;
  double t_fetch;
  double latency;
};

class DesCrossCheck : public ::testing::TestWithParam<ReplayCase> {};

TEST_P(DesCrossCheck, EventDrivenMatchesTimelineAlgebra) {
  const auto& c = GetParam();
  sim::ReplayParams p{.layers = c.layers,
                      .window = c.window,
                      .t_compute = c.t_compute,
                      .t_fetch = c.t_fetch,
                      .link_latency = c.latency};
  const auto des = sim::replay_forward_sweep(p);
  const auto alg = sim::forward_sweep_timeline(p);
  EXPECT_NEAR(des.makespan, alg.makespan, 1e-12);
  EXPECT_EQ(des.fetches, alg.fetches);
  EXPECT_NEAR(des.gpu_idle, alg.gpu_idle, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, DesCrossCheck,
    ::testing::Values(
        ReplayCase{20, 2, 1.0, 0.2, 0.0},   // compute-bound: no stalls
        ReplayCase{20, 1, 0.2, 1.0, 0.0},   // transfer-bound: stalls
        ReplayCase{20, 4, 0.5, 0.5, 0.01},  // balanced with latency
        ReplayCase{8, 8, 1.0, 3.0, 0.0},    // fully resident: no fetches
        ReplayCase{50, 3, 0.1, 0.35, 0.0},  // bandwidth saturation
        ReplayCase{1, 1, 1.0, 1.0, 0.0}));  // single layer

TEST(DesReplay, ComputeBoundHasZeroIdle) {
  sim::ReplayParams p{.layers = 30, .window = 2, .t_compute = 1.0,
                      .t_fetch = 0.3, .link_latency = 0.0};
  const auto r = sim::replay_forward_sweep(p);
  EXPECT_DOUBLE_EQ(r.gpu_idle, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 30.0);
  EXPECT_EQ(r.fetches, 28u);
}

TEST(DesReplay, TransferBoundMakespanIsLinkLimited) {
  // One-layer window, fetch twice as slow as compute: the link paces the
  // sweep after the resident prefix.
  sim::ReplayParams p{.layers = 10, .window = 1, .t_compute = 1.0,
                      .t_fetch = 2.0, .link_latency = 0.0};
  const auto r = sim::replay_forward_sweep(p);
  EXPECT_GT(r.gpu_idle, 0.0);
  // Layer 0 computes at [0,1); fetch i completes at 2i (FIFO, issued early
  // enough); last fetch (layer 9) done at 18, computes to 19.
  EXPECT_DOUBLE_EQ(r.makespan, 19.0);
}

TEST(DesReplay, LargerWindowNeverHurts) {
  for (std::size_t m : {1u, 2u, 4u, 8u}) {
    sim::ReplayParams a{.layers = 24, .window = m, .t_compute = 0.4,
                        .t_fetch = 1.0, .link_latency = 0.0};
    sim::ReplayParams b = a;
    b.window = m + 1;
    EXPECT_LE(sim::replay_forward_sweep(b).makespan,
              sim::replay_forward_sweep(a).makespan + 1e-12)
        << "window " << m;
  }
}

}  // namespace
}  // namespace sh

// Three-tier optimizer-state offload (SH_OPT_TIER=nvme): moments paged
// through the swap tier must never change the numbers — healthy, faulted or
// under activation-spill pressure — and an exhausted fault budget must
// surface as a typed IoError at a step boundary with no torn state.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <vector>

#include "baselines/stronghold_strategy.hpp"
#include "baselines/strategy.hpp"
#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "core/window_model.hpp"
#include "data/synthetic.hpp"
#include "sim/hardware.hpp"
#include "storage/fault_plan.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

nn::GptConfig tiny_config(bool checkpoint = false) {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.checkpoint_activations = checkpoint;
  return cfg;
}

std::vector<data::Batch> make_batches(std::int64_t bs, std::int64_t seq,
                                      int count, std::uint64_t seed = 99) {
  data::SyntheticCorpus corpus(32, seed);
  std::vector<data::Batch> out;
  for (int i = 0; i < count; ++i) out.push_back(corpus.next_batch(bs, seq));
  return out;
}

EngineConfig nvme_tier_config(const std::string& tag) {
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.optimizer_tier = OptimizerTier::nvme;
  ecfg.swap_path = ::testing::TempDir() + "opt_tier_" + tag + ".bin";
  return ecfg;
}

std::pair<std::vector<float>, std::vector<float>> run_engine(
    const nn::GptConfig& mcfg, EngineConfig ecfg,
    const std::vector<data::Batch>& batches, EngineStats* stats = nullptr) {
  nn::GptModel model(mcfg);
  StrongholdEngine engine(model, std::move(ecfg));
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  if (stats != nullptr) *stats = engine.stats();
  return {params, losses};
}

std::pair<std::vector<float>, std::vector<float>> run_monolithic(
    const nn::GptConfig& mcfg, const std::vector<data::Batch>& batches) {
  nn::GptModel model(mcfg);
  MonolithicTrainer trainer(model, optim::AdamConfig{});
  trainer.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(trainer.train_step(b));
  std::vector<float> params;
  trainer.snapshot_params(params);
  return {params, losses};
}

TEST(OptTier, NvmeMomentsMatchMonolithicBitwise) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 3);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  EngineStats stats;
  const auto [params, losses] =
      run_engine(mcfg, nvme_tier_config("bitwise"), batches, &stats);

  EXPECT_GT(stats.opt_tiered_layers, 0u) << "no layer's moments were tiered";
  EXPECT_GT(stats.moment_writes, 0u) << "no moment write-back reached the tier";
  EXPECT_GT(stats.moment_prefetches + stats.moment_demand_reads, 0u);
  EXPECT_EQ(stats.moment_update_skips, 0u);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(OptTier, CombinesWithSwapBackedLayerStates) {
  // Moments on the tier AND layer params/opt regions past the CPU budget on
  // the same swap file (distinct key spaces) — still bit-identical.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  EngineConfig ecfg = nvme_tier_config("combined");
  ecfg.window = 1;
  ecfg.cpu_capacity_bytes = 64 * 1024;
  EngineStats stats;
  const auto [params, losses] = run_engine(mcfg, ecfg, batches, &stats);
  EXPECT_GT(stats.swap_backed_layers, 0u);
  EXPECT_GT(stats.opt_tiered_layers, 0u);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(OptTier, EnvVarSelectsTierAndRejectsGarbage) {
  const auto mcfg = tiny_config();
  ::setenv("SH_OPT_TIER", "nvme", 1);
  {
    nn::GptModel model(mcfg);
    EngineConfig ecfg;
    ecfg.window = 2;
    ecfg.swap_path = ::testing::TempDir() + "opt_tier_env.bin";
    StrongholdEngine engine(model, ecfg);
    EXPECT_GT(engine.stats().opt_tiered_layers, 0u);
  }
  {
    // The tier needs a backing file: nvme without swap_path must be a
    // loud config error, not a silent fallback.
    nn::GptModel model(mcfg);
    EXPECT_THROW(StrongholdEngine(model, EngineConfig{}),
                 std::invalid_argument);
  }
  ::setenv("SH_OPT_TIER", "floppy", 1);
  {
    nn::GptModel model(mcfg);
    EngineConfig ecfg;
    ecfg.swap_path = ::testing::TempDir() + "opt_tier_env2.bin";
    EXPECT_THROW(StrongholdEngine(model, ecfg), std::invalid_argument);
  }
  ::unsetenv("SH_OPT_TIER");
}

TEST(OptTier, FaultedMomentPagingLossBitIdentical) {
  // Transient tier faults during moment paging (reads and write-backs) must
  // be absorbed by the retry policy: same losses, same params, no skips —
  // at every injection rate.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 3);
  const auto [ref_params, ref_losses] =
      run_engine(mcfg, nvme_tier_config("healthy"), batches);

  for (const double rate : {0.5, 0.9}) {
    EngineConfig faulted = nvme_tier_config("faulted_" + std::to_string(rate));
    faulted.swap_faults.rate = rate;
    faulted.swap_faults.seed = 2026;
    faulted.swap_faults.latency_spike_s = 1e-4;
    faulted.swap_faults.max_faults_per_op = 2;  // bounded: retries recover
    faulted.swap_faults.max_attempts = 4;
    faulted.swap_faults.backoff_initial_s = 1e-5;

    EngineStats stats;
    const auto [params, losses] = run_engine(mcfg, faulted, batches, &stats);
    EXPECT_GT(stats.swap_faults_injected, 0u)
        << "fault plan never fired at rate " << rate;
    EXPECT_EQ(stats.swap_io_errors, 0u);
    EXPECT_EQ(stats.moment_update_skips, 0u)
        << "bounded transient faults must not skip updates";
    EXPECT_EQ(losses, ref_losses) << "loss diverged at rate " << rate;
    sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
  }
}

TEST(OptTier, ExhaustedBudgetRaisesIoErrorWithoutTornState) {
  // A permanently failing tier (every moment read EIOs past the retry
  // budget) must skip the affected updates atomically — params, moments and
  // step counters keep their pre-update values — and surface a typed
  // storage::IoError at a step boundary, never a torn update or a hang.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);

  EngineConfig ecfg = nvme_tier_config("dead");
  ecfg.swap_faults.rate = 1.0;
  ecfg.swap_faults.latency_weight = 0.0;
  ecfg.swap_faults.short_weight = 0.0;
  ecfg.swap_faults.fault_writes = false;  // init can seed the zero moments
  ecfg.swap_faults.max_faults_per_op = std::numeric_limits<std::size_t>::max();
  ecfg.swap_faults.max_attempts = 3;
  ecfg.swap_faults.backoff_initial_s = 1e-5;

  nn::GptModel model(mcfg);
  {
    StrongholdEngine engine(model, ecfg);
    engine.init_params(42);
    std::vector<float> before;
    engine.snapshot_params(before);

    bool threw = false;
    try {
      for (const auto& b : batches) engine.train_step(b);
    } catch (const storage::IoError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "dead moment tier never surfaced an IoError";
    EXPECT_GT(engine.stats().moment_update_skips, 0u);

    // Every tiered update was skipped whole: the offloadable blocks'
    // masters are exactly the post-init values, never a torn mix of
    // stepped params and unstepped moments. (The pinned embedding/head
    // are not tiered and legitimately complete their updates.)
    std::vector<float> after;
    engine.snapshot_params(after);
    ASSERT_EQ(after.size(), before.size());
    const auto head =
        static_cast<std::size_t>(model.layer(0).param_count());
    const auto tail = static_cast<std::size_t>(
        model.layer(model.num_layers() - 1).param_count());
    for (std::size_t i = head; i < after.size() - tail; ++i) {
      ASSERT_EQ(after[i], before[i])
          << "tiered block parameter moved despite the skipped update, "
             "index "
          << i;
    }
  }  // destructor joins workers without hanging or rethrowing
}

TEST(OptTier, CheckpointRoundTripsAcrossTiers) {
  // The checkpoint format is tier-transparent: a checkpoint taken under
  // SH_OPT_TIER=nvme restores into a CPU-tier engine (and vice versa) and
  // both continue with bit-identical trajectories.
  const auto mcfg = tiny_config();
  const auto warm = make_batches(2, mcfg.max_seq, 2, 7);
  const auto cont = make_batches(2, mcfg.max_seq, 2, 8);
  const std::string path = ::testing::TempDir() + "opt_tier_ckpt.bin";

  nn::GptModel model_a(mcfg);
  StrongholdEngine tiered(model_a, nvme_tier_config("ckpt_src"));
  tiered.init_params(42);
  for (const auto& b : warm) tiered.train_step(b);
  tiered.save_checkpoint(path);

  // Restore into a CPU-tier engine and into a fresh NVMe-tier engine.
  nn::GptModel model_b(mcfg);
  EngineConfig cpu_cfg;
  cpu_cfg.window = 2;
  StrongholdEngine cpu_tier(model_b, cpu_cfg);
  cpu_tier.init_params(1);  // overwritten by the checkpoint
  cpu_tier.load_checkpoint(path);

  nn::GptModel model_c(mcfg);
  StrongholdEngine retiered(model_c, nvme_tier_config("ckpt_dst"));
  retiered.init_params(1);
  retiered.load_checkpoint(path);

  for (const auto& b : cont) {
    const float l0 = tiered.train_step(b);
    EXPECT_EQ(l0, cpu_tier.train_step(b));
    EXPECT_EQ(l0, retiered.train_step(b));
  }
  std::vector<float> p0, p1, p2;
  tiered.snapshot_params(p0);
  cpu_tier.snapshot_params(p1);
  retiered.snapshot_params(p2);
  sh::testing::expect_allclose(p1, p0, 0.0f, 0.0f);
  sh::testing::expect_allclose(p2, p0, 0.0f, 0.0f);
}

TEST(OptTier, ActivationSpillUnderPressureStaysExact) {
  // Second tier client: with a byte-budget window too small for the
  // prefetch lookahead, arena pressure spills already-forwarded activation
  // checkpoints to the tier; they restore before their backward and the
  // numbers never move.
  const auto mcfg = tiny_config(/*checkpoint=*/true);
  const auto batches = make_batches(2, mcfg.max_seq, 3);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  nn::GptModel probe(mcfg);
  std::size_t block_floats = 0;
  for (std::size_t i = 1; i + 1 < probe.num_layers(); ++i) {
    block_floats = std::max(
        block_floats,
        2 * static_cast<std::size_t>(probe.layer(i).param_count()));
  }

  EngineConfig ecfg = nvme_tier_config("spill");
  ecfg.window_mode = WindowMode::ByteBudget;
  // 2.5 slots where window 2 wants 3: every hook-time prefetch of a third
  // layer signals pressure before deferring.
  ecfg.window_budget_floats = 2 * block_floats + block_floats / 2;

  EngineStats stats;
  const auto [params, losses] = run_engine(mcfg, ecfg, batches, &stats);
  EXPECT_GT(stats.arena.pressure_events, 0u) << "pressure never fired";
  EXPECT_GT(stats.act_spills, 0u) << "no activation checkpoint was spilled";
  EXPECT_EQ(stats.act_spills, stats.act_restores)
      << "every spilled checkpoint must be restored for its backward";
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(OptTier, WindowModelChargesMomentPaging) {
  // Eq. 3 must charge t_opt_cpu + t_opt_io; tier_io_hidden isolates the
  // I/O share so a tier-bound failure is distinguishable from a CPU-bound
  // one.
  WindowModelInput input;
  LayerProfile p;
  p.t_fp = 1.0;
  p.t_bp = 2.0;
  p.t_c2g = 0.1;
  p.t_g2c = 0.1;
  p.s_fp = 1.0;
  p.s_bp = 1.0;
  p.t_opt_cpu = 0.5;
  input.layers.assign(6, p);
  input.s_avail = 100.0;

  auto d = solve_window(input);
  ASSERT_TRUE(d.feasible);
  EXPECT_TRUE(d.update_hidden);
  EXPECT_TRUE(d.tier_io_hidden) << "zero t_opt_io must report hidden";

  for (auto& l : input.layers) l.t_opt_io = 1e6;  // tier far too slow
  d = solve_window(input);
  EXPECT_FALSE(d.update_hidden);
  EXPECT_FALSE(d.tier_io_hidden);

  // I/O hides but the CPU update does not: the refinement separates them.
  for (auto& l : input.layers) {
    l.t_opt_io = 0.1;
    l.t_opt_cpu = 1e6;
  }
  d = solve_window(input);
  EXPECT_FALSE(d.update_hidden);
  EXPECT_TRUE(d.tier_io_hidden);
}

TEST(OptTier, SimulatedCapacityAtLeastDoubles) {
  // The documented capacity story (docs/MEMORY_TIERS.md): at fixed GPU +
  // pinned CPU RAM, moving moments + spilled checkpoints to NVMe must at
  // least double the max trainable size on the paper's V100 server.
  const auto v100 = sim::v100_server();
  baselines::StrongholdOptions tiered;
  tiered.nvme_optimizer_tier = true;
  const baselines::StrongholdStrategy two_tier;
  const baselines::StrongholdStrategy three_tier(tiered);
  EXPECT_EQ(three_tier.name(), "STRONGHOLD(NVMe-opt)");

  baselines::Workload w;
  w.model = sim::table1_model(550, 2560);
  w.batch = 4;
  const auto base_cap = two_tier.capacity(w, v100);
  const auto tier_cap = three_tier.capacity(w, v100);
  EXPECT_FALSE(base_cap.fits);
  EXPECT_EQ(base_cap.limiter, "cpu-pinned");
  EXPECT_TRUE(tier_cap.fits) << "limiter: " << tier_cap.limiter;
  EXPECT_GT(tier_cap.nvme_bytes, 0.0);
  EXPECT_LT(tier_cap.cpu_bytes, 0.55 * base_cap.cpu_bytes)
      << "CPU bytes must roughly halve when moments leave RAM";

  const double base =
      baselines::largest_trainable_billions(two_tier, v100, 2560, 1, 4);
  const double grown =
      baselines::largest_trainable_billions(three_tier, v100, 2560, 1, 4);
  EXPECT_GT(base, 0.0);
  EXPECT_GE(grown, 2.0 * base)
      << "three-tier plan no longer doubles capacity: " << base << "B -> "
      << grown << "B";
}

}  // namespace
}  // namespace sh::core

// Property sweep: offloaded training must match the monolithic oracle across
// the full configuration matrix — window size x executors x activation
// checkpointing x window mode x swap tier x MoE.
#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

struct MatrixCase {
  std::size_t window;
  std::size_t executors;
  bool checkpoint;
  WindowMode mode;
  bool swap;
  std::int64_t moe_experts;

  friend std::ostream& operator<<(std::ostream& os, const MatrixCase& c) {
    return os << "w" << c.window << "_e" << c.executors << "_ck"
              << c.checkpoint << "_mode"
              << (c.mode == WindowMode::UniformSlots ? "slots" : "budget")
              << "_swap" << c.swap << "_moe" << c.moe_experts;
  }
};

class EngineMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EngineMatrix, MatchesMonolithicOracle) {
  const auto& c = GetParam();
  nn::GptConfig mcfg;
  mcfg.vocab = 32;
  mcfg.max_seq = 8;
  mcfg.hidden = 16;
  mcfg.heads = 2;
  mcfg.layers = 4;
  mcfg.checkpoint_activations = c.checkpoint;
  mcfg.moe_experts = c.moe_experts;
  mcfg.moe_every = 2;

  data::SyntheticCorpus corpus(mcfg.vocab, 1000 + c.window);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(corpus.next_batch(4, mcfg.max_seq));

  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = c.window;
  ecfg.num_executors = c.executors;
  ecfg.window_mode = c.mode;
  if (c.swap) {
    ecfg.cpu_capacity_bytes = 64 * 1024;
    std::ostringstream path;
    path << ::testing::TempDir() << "matrix_" << c << ".bin";
    ecfg.swap_path = path.str();
  }
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);

  if (c.executors == 1) {
    // Single executor: exact.
    EXPECT_EQ(losses, ref_losses);
    sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
  } else {
    for (std::size_t i = 0; i < losses.size(); ++i) {
      EXPECT_NEAR(losses[i], ref_losses[i], 1e-5f);
    }
    sh::testing::expect_allclose(params, ref_params, 1e-5f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrix,
    ::testing::Values(
        // Window sweep, plain.
        MatrixCase{1, 1, false, WindowMode::UniformSlots, false, 0},
        MatrixCase{3, 1, false, WindowMode::UniformSlots, false, 0},
        MatrixCase{4, 1, false, WindowMode::UniformSlots, false, 0},
        // Checkpointing interactions.
        MatrixCase{1, 1, true, WindowMode::UniformSlots, false, 0},
        MatrixCase{2, 1, true, WindowMode::UniformSlots, true, 0},
        MatrixCase{2, 2, true, WindowMode::UniformSlots, false, 0},
        // Byte-budget mode.
        MatrixCase{1, 1, false, WindowMode::ByteBudget, false, 0},
        MatrixCase{2, 1, true, WindowMode::ByteBudget, false, 3},
        MatrixCase{2, 1, false, WindowMode::ByteBudget, true, 0},
        MatrixCase{3, 2, false, WindowMode::ByteBudget, false, 0},
        // Executors x swap.
        MatrixCase{1, 2, false, WindowMode::UniformSlots, true, 0},
        MatrixCase{2, 4, false, WindowMode::UniformSlots, false, 0},
        // MoE everywhere.
        MatrixCase{1, 1, false, WindowMode::UniformSlots, false, 2},
        MatrixCase{2, 2, true, WindowMode::ByteBudget, false, 2},
        MatrixCase{2, 1, false, WindowMode::UniformSlots, true, 3}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

TEST(EngineGenerate, LearnsMarkovSuccessors) {
  nn::GptConfig mcfg;
  mcfg.vocab = 16;
  mcfg.max_seq = 8;
  mcfg.hidden = 32;
  mcfg.heads = 4;
  mcfg.layers = 2;
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 5e-3f;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(8);
  data::SyntheticCorpus corpus(mcfg.vocab, 123);
  for (int i = 0; i < 150; ++i) {
    engine.train_step(corpus.next_batch(8, mcfg.max_seq));
  }
  // Generate and score transitions against the corpus's successor table.
  const std::vector<std::int32_t> prompt = {3};
  const auto tokens = engine.generate(prompt, 24);
  ASSERT_EQ(tokens.size(), 25u);
  int follow = 0;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i + 1] == corpus.successor(tokens[i])) ++follow;
  }
  // The chain is followed 75% of the time in the data; a trained model's
  // greedy decoding should track it most of the time.
  EXPECT_GE(follow, 15) << "only " << follow << "/24 transitions learned";
}

TEST(EngineGenerate, RejectsEmptyPrompt) {
  nn::GptConfig mcfg;
  mcfg.layers = 2;
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 1;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(1);
  EXPECT_THROW(engine.generate({}, 4), std::invalid_argument);
}

}  // namespace
}  // namespace sh::core

// BF16 <-> FP32 conversion kernels and the dtype-tagged StorageView.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/dtype.hpp"
#include "tensor/rng.hpp"

namespace sh::tensor {
namespace {

float from_bits(std::uint32_t bits) { return std::bit_cast<float>(bits); }
std::uint32_t to_bits(float v) { return std::bit_cast<std::uint32_t>(v); }

TEST(Dtype, BytesPerElement) {
  EXPECT_EQ(bytes_per_element(DType::f32), 4u);
  EXPECT_EQ(bytes_per_element(DType::bf16), 2u);
}

TEST(Dtype, ParseDtypeAcceptsAliases) {
  EXPECT_EQ(parse_dtype("f32"), DType::f32);
  EXPECT_EQ(parse_dtype("FP32"), DType::f32);
  EXPECT_EQ(parse_dtype("float32"), DType::f32);
  EXPECT_EQ(parse_dtype("bf16"), DType::bf16);
  EXPECT_EQ(parse_dtype("BFloat16"), DType::bf16);
  EXPECT_THROW(parse_dtype("fp16"), std::invalid_argument);
  EXPECT_THROW(parse_dtype(""), std::invalid_argument);
}

TEST(Dtype, ParseRoundingAcceptsAliases) {
  EXPECT_EQ(parse_rounding("rne"), Rounding::nearest_even);
  EXPECT_EQ(parse_rounding("nearest_even"), Rounding::nearest_even);
  EXPECT_EQ(parse_rounding("SR"), Rounding::stochastic);
  EXPECT_EQ(parse_rounding("stochastic"), Rounding::stochastic);
  EXPECT_THROW(parse_rounding("up"), std::invalid_argument);
}

TEST(Bf16, RepresentableValuesRoundTripExactly) {
  const float exact[] = {0.0f,  -0.0f, 1.0f,   -1.0f, 0.5f,
                         2.0f,  -4.5f, 0.125f, 256.0f, 3.140625f};
  for (float v : exact) {
    const bf16 b = float_to_bf16(v);
    EXPECT_EQ(bf16_to_float(b), v) << v;
  }
  // Every bf16 value is exactly a f32 with zero low bits; decode/encode of
  // such a value must be the identity on the bit pattern.
  for (std::uint32_t hi : {0x3F80u, 0xC123u, 0x0001u, 0x7F7Fu}) {
    const float v = from_bits(hi << 16);
    EXPECT_EQ(float_to_bf16(v), static_cast<bf16>(hi));
  }
}

TEST(Bf16, RoundsToNearestEvenOnTies) {
  // Low half exactly 0x8000 is a tie. 0x3F80_8000: high LSB 0 -> stays even.
  EXPECT_EQ(float_to_bf16(from_bits(0x3F808000u)), 0x3F80);
  // 0x3F81_8000: high LSB 1 -> rounds up to even 0x3F82.
  EXPECT_EQ(float_to_bf16(from_bits(0x3F818000u)), 0x3F82);
  // Just below / above the tie go to the nearest value regardless of parity.
  EXPECT_EQ(float_to_bf16(from_bits(0x3F807FFFu)), 0x3F80);
  EXPECT_EQ(float_to_bf16(from_bits(0x3F808001u)), 0x3F81);
}

TEST(Bf16, InfinityPassesThrough) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_to_float(float_to_bf16(inf)), inf);
  EXPECT_EQ(bf16_to_float(float_to_bf16(-inf)), -inf);
  // Finite values that round past the bf16-finite range become infinity.
  const float huge = from_bits(0x7F7FFFFFu);  // f32 max: rounds up past max
  EXPECT_EQ(bf16_to_float(float_to_bf16(huge)), inf);
}

TEST(Bf16, NanStaysNanWithSign) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16(nan))));
  EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16(-nan))));
  // A signalling-style payload whose top mantissa bits are zero must not
  // collapse to infinity: the quiet bit is forced on.
  const float snan = from_bits(0x7F800001u);
  const bf16 b = float_to_bf16(snan);
  EXPECT_TRUE(std::isnan(bf16_to_float(b)));
  const float neg = from_bits(0xFF800001u);
  EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16(neg))));
  EXPECT_TRUE(std::signbit(bf16_to_float(float_to_bf16(neg))));
}

TEST(Bf16, SubnormalsRoundLikeAnyOtherValue) {
  // A f32 subnormal with bit 16 set maps to the matching bf16 subnormal.
  EXPECT_EQ(float_to_bf16(from_bits(0x00010000u)), 0x0001);
  // The smallest f32 subnormal is far below half a bf16 ulp: rounds to +0.
  EXPECT_EQ(float_to_bf16(from_bits(0x00000001u)), 0x0000);
  // bf16 subnormals decode exactly.
  EXPECT_EQ(to_bits(bf16_to_float(bf16{0x0001})), 0x00010000u);
  EXPECT_EQ(to_bits(bf16_to_float(bf16{0x8001})), 0x80010000u);
}

TEST(Bf16, QuantizeInplaceMatchesRoundTrip) {
  Rng rng(7);
  std::vector<float> vals(257);
  rng.fill_uniform(vals, 3.0f);
  std::vector<float> quantized = vals;
  quantize_bf16_inplace(quantized.data(), quantized.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(quantized[i], bf16_to_float(float_to_bf16(vals[i])));
  }
}

TEST(Bf16Stochastic, DeterministicUnderFixedSeed) {
  Rng rng_a(42), rng_b(42), rng_c(43);
  std::vector<float> vals(512);
  Rng fill(3);
  fill.fill_uniform(vals, 1.0f);
  std::vector<bf16> a(vals.size()), b(vals.size()), c(vals.size());
  convert_float_to_bf16_stochastic(vals.data(), a.data(), vals.size(), rng_a);
  convert_float_to_bf16_stochastic(vals.data(), b.data(), vals.size(), rng_b);
  convert_float_to_bf16_stochastic(vals.data(), c.data(), vals.size(), rng_c);
  EXPECT_EQ(a, b);   // same seed, same stream
  EXPECT_NE(a, c);   // different seed diverges
}

TEST(Bf16Stochastic, UnbiasedOnAverage) {
  // x sits 1/4 of the way between two adjacent bf16 values, so stochastic
  // rounding must go up ~25% of the time and the mean must recover x.
  const float lo = bf16_to_float(bf16{0x3F80});  // 1.0
  const float hi = bf16_to_float(bf16{0x3F81});
  const float x = from_bits(0x3F804000u);  // low bits 0x4000 = 1/4 gap
  Rng rng(9);
  double sum = 0.0;
  int ups = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const float r = bf16_to_float(float_to_bf16_stochastic(x, rng));
    EXPECT_TRUE(r == lo || r == hi);
    sum += r;
    ups += (r == hi);
  }
  const double up_rate = static_cast<double>(ups) / kTrials;
  EXPECT_NEAR(up_rate, 0.25, 0.02);
  EXPECT_NEAR(sum / kTrials, x, (hi - lo) * 0.02);
}

TEST(Bf16Stochastic, SpecialValuesAreNeverPerturbed) {
  const float inf = std::numeric_limits<float>::infinity();
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    // inf + random low bits would be NaN without the passthrough.
    EXPECT_EQ(bf16_to_float(float_to_bf16_stochastic(inf, rng)), inf);
    EXPECT_EQ(bf16_to_float(float_to_bf16_stochastic(-inf, rng)), -inf);
    EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16_stochastic(
        std::numeric_limits<float>::quiet_NaN(), rng))));
  }
}

TEST(MixSeed, DistinctStreamsPerEvent) {
  const std::uint64_t base = mix_seed(1, 2, 3);
  EXPECT_NE(base, mix_seed(1, 2, 4));  // next event
  EXPECT_NE(base, mix_seed(1, 3, 3));  // next layer
  EXPECT_NE(base, mix_seed(2, 2, 3));  // other config seed
  EXPECT_EQ(base, mix_seed(1, 2, 3));  // pure function
}

TEST(StorageView, TypedAccessorsEnforceDtype) {
  float f[4] = {1, 2, 3, 4};
  StorageView fv(f, DType::f32, 4);
  EXPECT_EQ(fv.size_bytes(), 16u);
  EXPECT_EQ(fv.f32(), f);
  EXPECT_THROW(fv.b16(), std::logic_error);

  bf16 b[4] = {};
  StorageView bv(b, DType::bf16, 4);
  EXPECT_EQ(bv.size_bytes(), 8u);
  EXPECT_EQ(bv.b16(), b);
  EXPECT_THROW(bv.f32(), std::logic_error);
  EXPECT_FALSE(StorageView().defined());
}

TEST(StorageView, LoadStoreRoundsThroughTheEncoding) {
  bf16 b[2] = {};
  StorageView view(b, DType::bf16, 2);
  view.store(0, 1.0f);
  view.store(1, from_bits(0x3F808001u));  // above the tie: rounds up
  EXPECT_EQ(view.load(0), 1.0f);
  EXPECT_EQ(view.load(1), bf16_to_float(bf16{0x3F81}));

  float f[1] = {};
  StorageView fview(f, DType::f32, 1);
  const float odd = from_bits(0x3F808001u);
  fview.store(0, odd);
  EXPECT_EQ(fview.load(0), odd);  // f32 stores are exact
}

TEST(StorageView, BulkEncodeDecodeAndSubview) {
  std::vector<float> src(64);
  Rng rng(11);
  rng.fill_uniform(src, 2.0f);

  std::vector<bf16> storage(64);
  StorageView view(storage.data(), DType::bf16, 64);
  view.encode(src.data(), 64);
  std::vector<float> out(64);
  view.decode(out.data(), 64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i], bf16_to_float(float_to_bf16(src[i])));
  }

  // Subview shares storage at an element offset.
  StorageView tail = view.subview(32, 32);
  EXPECT_EQ(tail.numel(), 32u);
  std::vector<float> tail_out(32);
  tail.decode(tail_out.data(), 32);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(tail_out[i], out[32 + i]);

  // Stochastic bulk encode is deterministic for a given Rng.
  std::vector<bf16> s1(64), s2(64);
  Rng ra(5), rb(5);
  StorageView v1(s1.data(), DType::bf16, 64), v2(s2.data(), DType::bf16, 64);
  v1.encode(src.data(), 64, Rounding::stochastic, ra);
  v2.encode(src.data(), 64, Rounding::stochastic, rb);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace sh::tensor

// BF16 working window over FP32 masters: loss-curve equivalence, halved
// wire traffic, doubled auto-window capacity, stochastic-rounding
// determinism and the FP32-default bit-identity regression.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "serve/kv_arena.hpp"
#include "tensor/dtype.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

nn::GptConfig tiny_config(std::int64_t layers = 4) {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = layers;
  return cfg;
}

std::vector<data::Batch> make_batches(std::int64_t bs, std::int64_t seq,
                                      int count, std::uint64_t seed = 99) {
  data::SyntheticCorpus corpus(32, seed);
  std::vector<data::Batch> out;
  for (int i = 0; i < count; ++i) out.push_back(corpus.next_batch(bs, seq));
  return out;
}

struct RunResult {
  std::vector<float> params;
  std::vector<float> losses;
  EngineStats stats;
};

RunResult run_engine(const nn::GptConfig& mcfg, EngineConfig ecfg,
                     const std::vector<data::Batch>& batches) {
  nn::GptModel model(mcfg);
  StrongholdEngine engine(model, std::move(ecfg));
  engine.init_params(42);
  RunResult r;
  for (const auto& b : batches) r.losses.push_back(engine.train_step(b));
  engine.snapshot_params(r.params);
  r.stats = engine.stats();
  return r;
}

float trailing_mean(const std::vector<float>& v, std::size_t n) {
  const std::size_t start = v.size() - n;
  return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(start),
                         v.end(), 0.0f) /
         static_cast<float>(n);
}

TEST(Bf16Window, DefaultDtypeIsFp32) {
  EXPECT_EQ(EngineConfig{}.window_dtype, tensor::DType::f32);
  EXPECT_EQ(EngineConfig{}.window_rounding, tensor::Rounding::nearest_even);
}

// The acceptance bar for PR 8: with the FP32 window (explicitly requested,
// not just defaulted), mono-vs-offload stays bitwise EXPECT_EQ.
TEST(Bf16Window, Fp32WindowKeepsBitIdentity) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 3);

  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.window_dtype = tensor::DType::f32;
  const auto r = run_engine(mcfg, ecfg, batches);
  EXPECT_EQ(r.losses, ref_losses);
  sh::testing::expect_allclose(r.params, ref_params, 0.0f, 0.0f);
}

TEST(Bf16Window, LossCurveTracksFp32Over200Steps) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 200);

  EngineConfig f32;
  f32.window = 2;
  const auto ref = run_engine(mcfg, f32, batches);

  EngineConfig b16;
  b16.window = 2;
  b16.window_dtype = tensor::DType::bf16;
  const auto r = run_engine(mcfg, b16, batches);

  ASSERT_EQ(r.losses.size(), ref.losses.size());
  // Early steps track FP32 closely (rounding noise has not compounded);
  // after 200 steps the trajectories may have drifted but must land in the
  // same loss basin: trailing means within a few percent, and the BF16 run
  // must have genuinely trained (well below the initial loss).
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(r.losses[i], ref.losses[i], 0.05f) << "step " << i;
  }
  const float ref_tail = trailing_mean(ref.losses, 50);
  const float b16_tail = trailing_mean(r.losses, 50);
  EXPECT_NEAR(b16_tail, ref_tail, 0.05f * ref_tail + 0.02f);
  EXPECT_LT(b16_tail, 0.7f * r.losses.front());
}

TEST(Bf16Window, HalvesWireBytesExactly) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 3);

  EngineConfig f32;
  f32.window = 2;
  const auto a = run_engine(mcfg, f32, batches);

  EngineConfig b16 = f32;
  b16.window_dtype = tensor::DType::bf16;
  const auto b = run_engine(mcfg, b16, batches);

  // Identical fetch/evict schedule (same fixed window), so the byte ratio
  // is exactly the element-size ratio — comfortably under the 0.55x bar.
  EXPECT_EQ(a.stats.h2d_transfers, b.stats.h2d_transfers);
  EXPECT_EQ(a.stats.d2h_transfers, b.stats.d2h_transfers);
  ASSERT_GT(a.stats.h2d_bytes, 0u);
  ASSERT_GT(a.stats.d2h_bytes, 0u);
  EXPECT_EQ(2 * b.stats.h2d_bytes, a.stats.h2d_bytes);
  EXPECT_EQ(2 * b.stats.d2h_bytes, a.stats.d2h_bytes);
}

TEST(Bf16Window, AutoWindowAdmitsAtLeast1p8xLayers) {
  // Fixed device budget sized for ~6 FP32 slots beyond the pinned layers:
  // the warm-up auto window fits 5 FP32 layers but 11 BF16 layers.
  const auto mcfg = tiny_config(/*layers=*/12);
  nn::GptModel probe(mcfg);
  std::int64_t max_params = 0;
  for (std::size_t i = 1; i + 1 < probe.num_layers(); ++i) {
    max_params = std::max(max_params, probe.layer(i).param_count());
  }
  const std::size_t pinned =
      2 * sizeof(float) *
      static_cast<std::size_t>(probe.layer(0).param_count() +
                               probe.layer(probe.num_layers() - 1)
                                   .param_count());
  const std::size_t slot_f32 =
      2 * sizeof(float) * static_cast<std::size_t>(max_params);
  const std::size_t gpu_mem = pinned + 6 * slot_f32 + slot_f32 / 2;

  EngineConfig base;
  base.window = 0;  // auto
  base.gpu_memory_bytes = gpu_mem;

  nn::GptModel m1(mcfg);
  StrongholdEngine fp32_engine(m1, base);
  const std::size_t w_f32 = fp32_engine.stats().window;

  EngineConfig b16 = base;
  b16.window_dtype = tensor::DType::bf16;
  nn::GptModel m2(mcfg);
  StrongholdEngine bf16_engine(m2, b16);
  const std::size_t w_b16 = bf16_engine.stats().window;

  ASSERT_GT(w_f32, 0u);
  EXPECT_GE(10 * w_b16, 18 * w_f32)
      << "bf16 window " << w_b16 << " vs f32 window " << w_f32;
}

TEST(Bf16Window, StochasticRoundingIsDeterministicUnderFixedSeed) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 4);

  EngineConfig cfg;
  cfg.window = 2;
  cfg.window_dtype = tensor::DType::bf16;
  cfg.window_rounding = tensor::Rounding::stochastic;
  cfg.rounding_seed = 7;

  const auto a = run_engine(mcfg, cfg, batches);
  const auto b = run_engine(mcfg, cfg, batches);
  EXPECT_EQ(a.losses, b.losses);
  sh::testing::expect_allclose(a.params, b.params, 0.0f, 0.0f);

  EngineConfig other = cfg;
  other.rounding_seed = 9;
  const auto c = run_engine(mcfg, other, batches);
  EXPECT_NE(a.losses, c.losses);
}

TEST(Bf16Window, RejectsFp16Bf16Combination) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig cfg;
  cfg.window = 2;
  cfg.fp16 = true;
  cfg.window_dtype = tensor::DType::bf16;
  EXPECT_THROW(StrongholdEngine(model, cfg), std::invalid_argument);
}

TEST(Bf16Window, EnvVarOverridesDtypeAtConstruction) {
  ::setenv("SH_WINDOW_DTYPE", "bf16", 1);
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig cfg;
  cfg.window = 2;  // window_dtype left at the f32 default
  StrongholdEngine engine(model, cfg);
  ::unsetenv("SH_WINDOW_DTYPE");

  obs::MetricsSnapshot snap;
  engine.export_metrics(snap);
  const auto* m = snap.find("engine.window_elem_bytes");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 2.0);
}

TEST(Bf16Window, TrainsCorrectlyUnderEnvOverride) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);

  EngineConfig explicit_cfg;
  explicit_cfg.window = 2;
  explicit_cfg.window_dtype = tensor::DType::bf16;
  const auto want = run_engine(mcfg, explicit_cfg, batches);

  ::setenv("SH_WINDOW_DTYPE", "bf16", 1);
  EngineConfig env_cfg;
  env_cfg.window = 2;
  const auto got = run_engine(mcfg, env_cfg, batches);
  ::unsetenv("SH_WINDOW_DTYPE");

  EXPECT_EQ(got.losses, want.losses);
  sh::testing::expect_allclose(got.params, want.params, 0.0f, 0.0f);
}

TEST(Bf16Window, KvArenaChargesRealBf16Bytes) {
  const auto mcfg = tiny_config();
  serve::KvArenaConfig f32;
  f32.chunk_tokens = 4;
  f32.budget_bytes = 1 << 20;
  serve::KvArena a(mcfg, f32);

  serve::KvArenaConfig b16 = f32;
  b16.dtype = tensor::DType::bf16;
  serve::KvArena b(mcfg, b16);

  ASSERT_GT(a.bytes_for(8), 0u);
  EXPECT_EQ(2 * b.bytes_for(8), a.bytes_for(8));
  EXPECT_EQ(2 * b.bytes_for(5), a.bytes_for(5));  // same chunk rounding
}

}  // namespace
}  // namespace sh::core

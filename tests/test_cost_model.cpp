// Validates the analytic cost model against the paper's Table I model
// configurations and basic scaling properties.
#include <gtest/gtest.h>

#include "sim/cost_model.hpp"

namespace sh::sim {
namespace {

struct Table1Row {
  std::int64_t layers;
  std::int64_t hidden;
  int mp;
  double billions;  // paper-reported size
  double rel_tol = 0.03;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, ParamCountMatchesPaper) {
  const auto& row = GetParam();
  const auto m = table1_model(row.layers, row.hidden, row.mp);
  // Paper rounds to 0.1B; allow 3% slack for their exact vocab/head choices.
  EXPECT_NEAR(params_billions(m), row.billions,
              row.rel_tol * row.billions + 0.05)
      << "layers=" << row.layers << " hidden=" << row.hidden;
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, Table1Test,
    ::testing::Values(
        // hd = 2560, MP = 1 rows.
        Table1Row{20, 2560, 1, 1.7}, Table1Row{50, 2560, 1, 4.0},
        Table1Row{74, 2560, 1, 5.9}, Table1Row{75, 2560, 1, 6.0},
        Table1Row{83, 2560, 1, 6.6}, Table1Row{260, 2560, 1, 20.5},
        Table1Row{300, 2560, 1, 23.7}, Table1Row{500, 2560, 1, 39.4},
        // hd = 4096 / 5120, MP = 1.
        Table1Row{19, 4096, 1, 4.0}, Table1Row{19, 5120, 1, 6.2},
        Table1Row{31, 5120, 1, 10.0},
        // hd = 5120, MP = 8 rows.
        Table1Row{10, 5120, 8, 3.4},
        // The 12-layer/5120 row is reported as 4.7B in Table I but the
        // paper's own 12 n hd^2 accounting gives 3.9B; accept the gap.
        Table1Row{12, 5120, 8, 4.7, 0.20},
        Table1Row{24, 5120, 8, 7.8}, Table1Row{72, 5120, 8, 23.2},
        Table1Row{200, 5120, 8, 63.2}, Table1Row{240, 5120, 8, 75.7},
        Table1Row{260, 5120, 8, 82.0}, Table1Row{328, 5120, 8, 103.2},
        Table1Row{1174, 5120, 8, 367.6}, Table1Row{1676, 5120, 8, 524.5},
        // hd = 8192+ rows.
        Table1Row{24, 8192, 8, 19.8}, Table1Row{31, 8192, 8, 25.4},
        Table1Row{31, 8704, 8, 28.7}, Table1Row{31, 9216, 8, 32.1},
        Table1Row{31, 13312, 8, 66.7}));

TEST(CostModel, StateBytesAre16PerParam) {
  const auto m = table1_model(20, 2560);
  EXPECT_NEAR(total_state_bytes(m), kStateBytesPerParam * total_params(m),
              1.0);
}

TEST(CostModel, ModelParallelismShardsStateAndFlops) {
  auto m1 = table1_model(24, 5120, 1);
  auto m8 = table1_model(24, 5120, 8);
  EXPECT_NEAR(block_state_bytes(m8), block_state_bytes(m1) / 8.0, 1.0);
  EXPECT_NEAR(block_fwd_flops(m8, 4), block_fwd_flops(m1, 4) / 8.0, 1.0);
  // Total parameters are a property of the model, not the sharding.
  EXPECT_DOUBLE_EQ(total_params(m1), total_params(m8));
}

TEST(CostModel, FlopsScaleLinearlyWithBatch) {
  const auto m = table1_model(20, 2560);
  EXPECT_NEAR(block_fwd_flops(m, 8), 2.0 * block_fwd_flops(m, 4), 1.0);
  EXPECT_NEAR(iteration_flops(m, 8), 2.0 * iteration_flops(m, 4), 1e6);
}

TEST(CostModel, BackwardIsTwiceForwardPlusOptionalRecompute) {
  const auto m = table1_model(20, 2560);
  const double fwd = block_fwd_flops(m, 4);
  EXPECT_NEAR(block_bwd_flops(m, 4, false), 2.0 * fwd, 1.0);
  EXPECT_NEAR(block_bwd_flops(m, 4, true), 3.0 * fwd, 1.0);
}

TEST(CostModel, CheckpointingReducesActivationMemory) {
  const auto m = table1_model(50, 2560);
  EXPECT_LT(activation_bytes_checkpointed(m, 4),
            activation_bytes_full(m, 4));
}

TEST(CostModel, WindowBytesAreParamsPlusGrads) {
  const auto m = table1_model(20, 2560);
  EXPECT_DOUBLE_EQ(block_window_bytes(m), 2.0 * block_param_bytes(m));
}

TEST(CostModel, SixFlopsPerParamPerTokenApproximation) {
  // Standard transformer rule of thumb: forward ~= 2 * params FLOPs/token for
  // wide models where attention matmuls are negligible.
  const auto m = table1_model(20, 8192);
  const double per_token = block_fwd_flops(m, 1) / m.seq;
  EXPECT_NEAR(per_token / (2.0 * block_params(m)), 1.0, 0.1);
}

TEST(CostModel, HeadFlopsMatchFormula) {
  const auto m = table1_model(20, 2560);
  EXPECT_DOUBLE_EQ(head_fwd_flops(m, 4),
                   2.0 * 4.0 * 1024.0 * 2560.0 * 30000.0);
}

}  // namespace
}  // namespace sh::sim

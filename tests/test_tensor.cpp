#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.hpp"

namespace sh::tensor {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, EmptyShapeHasZeroNumel) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, Equality) {
  EXPECT_TRUE(Shape({2, 3}) == Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({2, 3, 1}));
}

TEST(Shape, RejectsNegativeDimension) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Shape, DimOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
}

TEST(Tensor, ZerosIsZeroInitialised) {
  auto t = Tensor::zeros({4, 4});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
  EXPECT_TRUE(t.owns());
  EXPECT_TRUE(t.defined());
}

TEST(Tensor, FullFillsValue) {
  auto t = Tensor::full({3}, 2.5f);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(t.at(i), 2.5f);
}

TEST(Tensor, ViewSharesMemory) {
  float buf[6] = {0, 1, 2, 3, 4, 5};
  auto v = Tensor::view({2, 3}, buf);
  EXPECT_FALSE(v.owns());
  v.at(0) = 42.0f;
  EXPECT_EQ(buf[0], 42.0f);
}

TEST(Tensor, RebindRepointsView) {
  float a[2] = {1, 2};
  float b[2] = {3, 4};
  auto v = Tensor::view({2}, a);
  v.rebind(b);
  EXPECT_EQ(v.at(0), 3.0f);
}

TEST(Tensor, RebindOwningThrows) {
  auto t = Tensor::zeros({2});
  float buf[2];
  EXPECT_THROW(t.rebind(buf), std::logic_error);
}

TEST(Tensor, CloneIsDeepCopy) {
  auto t = Tensor::full({3}, 1.0f);
  auto c = t.clone();
  c.at(0) = 9.0f;
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(c.at(0), 9.0f);
}

TEST(Tensor, CopyFromChecksSize) {
  auto a = Tensor::zeros({4});
  auto b = Tensor::full({4}, 2.0f);
  a.copy_from(b);
  EXPECT_EQ(a.at(3), 2.0f);
  auto c = Tensor::zeros({5});
  EXPECT_THROW(a.copy_from(c), std::invalid_argument);
}

}  // namespace
}  // namespace sh::tensor

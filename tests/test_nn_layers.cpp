// Gradient checks and behavioural tests for every nn layer.
#include <gtest/gtest.h>

#include <vector>

#include "nn/attention.hpp"
#include "nn/block.hpp"
#include "nn/embedding.hpp"
#include "nn/head.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "testing/util.hpp"

namespace sh::nn {
namespace {

using sh::tensor::Rng;
using sh::tensor::Tensor;
using sh::testing::check_gradient;
using sh::testing::ProjectionLoss;

/// Runs forward, projects to a scalar loss, runs backward and finite-diff
/// checks both the parameter gradient and the input gradient.
void gradcheck_layer(Layer& layer, Tensor& x, const BatchShape& shape,
                     std::int64_t out_numel) {
  OwnedStorage storage(layer.param_count());
  layer.bind(storage.params(), storage.grads());
  Rng rng(101);
  layer.init(rng);

  ProjectionLoss loss(out_numel);
  auto loss_fn = [&] { return loss.value(layer.forward(x, shape)); };

  storage.zero_grads();
  auto y = layer.forward(x, shape);
  ASSERT_EQ(y.numel(), out_numel);
  auto gx = layer.backward(loss.grad(y.shape()), shape);

  // Parameter gradients.
  check_gradient({storage.params(), static_cast<std::size_t>(storage.count())},
                 {storage.grads(), static_cast<std::size_t>(storage.count())},
                 loss_fn);
  // Input gradients (layers that consume activations).
  if (gx.defined()) {
    check_gradient(x.span(), gx.span(), loss_fn);
  }
}

TEST(Linear, GradCheck) {
  Linear layer("fc", 5, 7);
  Rng rng(1);
  auto x = Tensor::zeros({3, 5});
  rng.fill_uniform(x.span(), 1.0f);
  gradcheck_layer(layer, x, {3, 1}, 3 * 7);
}

TEST(Linear, ForwardMatchesManualComputation) {
  Linear layer("fc", 2, 2);
  OwnedStorage storage(layer.param_count());
  layer.bind(storage.params(), storage.grads());
  // W = [[1, 2], [3, 4]], b = [10, 20].
  storage.params()[0] = 1;
  storage.params()[1] = 2;
  storage.params()[2] = 3;
  storage.params()[3] = 4;
  storage.params()[4] = 10;
  storage.params()[5] = 20;
  auto x = Tensor::zeros({1, 2});
  x.at(0) = 1.0f;
  x.at(1) = 1.0f;
  auto y = layer.forward(x, {1, 1});
  EXPECT_FLOAT_EQ(y.at(0), 13.0f);  // 1+2+10
  EXPECT_FLOAT_EQ(y.at(1), 27.0f);  // 3+4+20
}

TEST(Linear, GradAccumulatesAcrossBackwardCalls) {
  Linear layer("fc", 2, 2);
  OwnedStorage storage(layer.param_count());
  layer.bind(storage.params(), storage.grads());
  Rng rng(2);
  layer.init(rng);
  auto x = Tensor::full({1, 2}, 1.0f);
  auto g = Tensor::full({1, 2}, 1.0f);
  layer.forward(x, {1, 1});
  layer.backward(g, {1, 1});
  const float after_one = storage.grads()[0];
  layer.forward(x, {1, 1});
  layer.backward(g, {1, 1});
  EXPECT_FLOAT_EQ(storage.grads()[0], 2.0f * after_one);
}

TEST(LayerNorm, GradCheck) {
  LayerNorm layer("ln", 6);
  Rng rng(3);
  auto x = Tensor::zeros({4, 6});
  rng.fill_uniform(x.span(), 2.0f);
  gradcheck_layer(layer, x, {4, 1}, 4 * 6);
}

TEST(Attention, GradCheck) {
  CausalSelfAttention layer("attn", 8, 2);
  Rng rng(4);
  const BatchShape shape{2, 3};
  auto x = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(x.span(), 1.0f);
  gradcheck_layer(layer, x, shape, shape.tokens() * 8);
}

TEST(Attention, RejectsIndivisibleHeads) {
  EXPECT_THROW(CausalSelfAttention("attn", 10, 3), std::invalid_argument);
}

TEST(Attention, IsCausal) {
  // Changing a later token must not affect earlier outputs.
  CausalSelfAttention layer("attn", 8, 2);
  OwnedStorage storage(layer.param_count());
  layer.bind(storage.params(), storage.grads());
  Rng rng(5);
  layer.init(rng);
  const BatchShape shape{1, 4};
  auto x = Tensor::zeros({4, 8});
  rng.fill_uniform(x.span(), 1.0f);
  auto y1 = layer.forward(x, shape).clone();
  x.at(3 * 8 + 0) += 10.0f;  // perturb the last token
  auto y2 = layer.forward(x, shape);
  for (std::int64_t t = 0; t < 3; ++t) {
    for (std::int64_t c = 0; c < 8; ++c) {
      EXPECT_FLOAT_EQ(y1.at(t * 8 + c), y2.at(t * 8 + c))
          << "token " << t << " changed by future perturbation";
    }
  }
}

TEST(Mlp, GradCheck) {
  Mlp layer("mlp", 6);
  Rng rng(6);
  auto x = Tensor::zeros({3, 6});
  rng.fill_uniform(x.span(), 1.0f);
  gradcheck_layer(layer, x, {3, 1}, 3 * 6);
}

TEST(TransformerBlock, GradCheck) {
  TransformerBlock layer("blk", 8, 2);
  Rng rng(7);
  const BatchShape shape{2, 3};
  auto x = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(x.span(), 1.0f);
  gradcheck_layer(layer, x, shape, shape.tokens() * 8);
}

TEST(TransformerBlock, CheckpointingMatchesNonCheckpointed) {
  const BatchShape shape{2, 4};
  Rng rng(8);
  auto x = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(x.span(), 1.0f);
  auto g = Tensor::zeros({shape.tokens(), 8});
  rng.fill_uniform(g.span(), 1.0f);

  TransformerBlock plain("blk", 8, 2, /*checkpoint=*/false);
  TransformerBlock ckpt("blk", 8, 2, /*checkpoint=*/true);
  OwnedStorage sp(plain.param_count()), sc(ckpt.param_count());
  plain.bind(sp.params(), sp.grads());
  ckpt.bind(sc.params(), sc.grads());
  Rng ra(9), rb(9);
  plain.init(ra);
  ckpt.init(rb);

  auto yp = plain.forward(x, shape);
  auto yc = ckpt.forward(x, shape);
  EXPECT_TRUE(plain.has_live_caches());
  EXPECT_FALSE(ckpt.has_live_caches());
  sh::testing::expect_allclose(yp.span(), yc.span(), 0.0f, 0.0f);

  auto gp = plain.backward(g, shape);
  auto gc = ckpt.backward(g, shape);
  sh::testing::expect_allclose(gp.span(), gc.span(), 0.0f, 0.0f);
  sh::testing::expect_allclose(
      {sp.grads(), static_cast<std::size_t>(sp.count())},
      {sc.grads(), static_cast<std::size_t>(sc.count())}, 0.0f, 0.0f);
}

TEST(Embedding, GradCheckOnTables) {
  Embedding layer("emb", 10, 4, 6);
  OwnedStorage storage(layer.param_count());
  layer.bind(storage.params(), storage.grads());
  Rng rng(10);
  layer.init(rng);
  const BatchShape shape{2, 3};
  layer.set_ids({1, 5, 1, 9, 0, 5});

  ProjectionLoss loss(shape.tokens() * 6);
  auto loss_fn = [&] { return loss.value(layer.forward({}, shape)); };
  storage.zero_grads();
  auto y = layer.forward({}, shape);
  auto gx = layer.backward(loss.grad(y.shape()), shape);
  EXPECT_FALSE(gx.defined());  // first layer: no upstream gradient
  check_gradient({storage.params(), static_cast<std::size_t>(storage.count())},
                 {storage.grads(), static_cast<std::size_t>(storage.count())},
                 loss_fn);
}

TEST(Embedding, ThrowsWithoutStagedIds) {
  Embedding layer("emb", 10, 4, 6);
  OwnedStorage storage(layer.param_count());
  layer.bind(storage.params(), storage.grads());
  EXPECT_THROW(layer.forward({}, {2, 3}), std::logic_error);
}

TEST(LmHead, GradCheck) {
  LmHead layer("head", 6, 9);
  Rng rng(12);
  auto x = Tensor::zeros({4, 6});
  rng.fill_uniform(x.span(), 1.0f);
  gradcheck_layer(layer, x, {4, 1}, 4 * 9);
}

TEST(Layers, RebindMovesParameters) {
  // Simulates what the offload engine does: compute with params in buffer A,
  // rebind to buffer B holding the same values, results must be identical.
  Linear layer("fc", 4, 4);
  OwnedStorage a(layer.param_count());
  std::vector<float> b_params(static_cast<std::size_t>(layer.param_count()));
  std::vector<float> b_grads(static_cast<std::size_t>(layer.param_count()), 0.0f);

  layer.bind(a.params(), a.grads());
  Rng rng(13);
  layer.init(rng);
  auto x = Tensor::full({2, 4}, 0.5f);
  auto y1 = layer.forward(x, {2, 1}).clone();

  std::copy_n(a.params(), layer.param_count(), b_params.data());
  layer.bind(b_params.data(), b_grads.data());
  auto y2 = layer.forward(x, {2, 1});
  sh::testing::expect_allclose(y1.span(), y2.span(), 0.0f, 0.0f);
}

}  // namespace
}  // namespace sh::nn

// Model checkpointing: save/resume must be exact, and the wall-clock
// execution tracer must show real compute/transfer overlap.
#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

std::string tmp(const std::string& tag) {
  return ::testing::TempDir() + "ckpt_" + tag + ".bin";
}

TEST(Checkpoint, SaveLoadRoundTripOnStore) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  LayerStore store(model, 2);
  store.init_params(5);
  store.state(1).step = 7;
  store.state(1).cpu_opt[3] = 1.25f;
  write_checkpoint(tmp("roundtrip"), store);

  nn::GptModel model2(mcfg);
  LayerStore store2(model2, 2);
  store2.init_params(99);  // different weights, to be overwritten
  read_checkpoint(tmp("roundtrip"), store2);
  EXPECT_EQ(store2.state(1).step, 7);
  EXPECT_EQ(store2.state(1).cpu_opt[3], 1.25f);
  for (std::size_t i = 0; i < store.size(); ++i) {
    sh::testing::expect_allclose(store2.state(i).cpu_params,
                                 store.state(i).cpu_params, 0.0f, 0.0f);
  }
}

TEST(Checkpoint, GeometryMismatchRejected) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  LayerStore store(model, 2);
  store.init_params(1);
  write_checkpoint(tmp("geom"), store);

  auto other_cfg = mcfg;
  other_cfg.layers = 5;
  nn::GptModel other(other_cfg);
  LayerStore other_store(other, 2);
  EXPECT_THROW(read_checkpoint(tmp("geom"), other_store),
               std::invalid_argument);
}

TEST(Checkpoint, MissingOrCorruptFileRejected) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  LayerStore store(model, 2);
  EXPECT_THROW(read_checkpoint("/nonexistent/ckpt.bin", store),
               std::runtime_error);
  // Corrupt: wrong magic.
  const std::string path = tmp("corrupt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "garbage";
  }
  EXPECT_THROW(read_checkpoint(path, store), std::runtime_error);
}

TEST(Checkpoint, ResumedEngineMatchesContinuousRun) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 50);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 6; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  // Continuous run: 6 steps.
  nn::GptModel m1(mcfg);
  EngineConfig cfg;
  cfg.window = 2;
  StrongholdEngine cont(m1, cfg);
  cont.init_params(42);
  std::vector<float> cont_losses;
  for (const auto& b : batches) cont_losses.push_back(cont.train_step(b));
  std::vector<float> cont_params;
  cont.snapshot_params(cont_params);

  // Interrupted run: 3 steps, save, load into a FRESH engine, 3 more.
  const std::string path = tmp("resume");
  {
    nn::GptModel m2(mcfg);
    StrongholdEngine first(m2, cfg);
    first.init_params(42);
    for (int i = 0; i < 3; ++i) first.train_step(batches[static_cast<std::size_t>(i)]);
    first.save_checkpoint(path);
  }
  nn::GptModel m3(mcfg);
  StrongholdEngine resumed(m3, cfg);
  resumed.init_params(0);  // wrong weights on purpose
  resumed.load_checkpoint(path);
  std::vector<float> resumed_losses;
  for (int i = 3; i < 6; ++i) {
    resumed_losses.push_back(
        resumed.train_step(batches[static_cast<std::size_t>(i)]));
  }
  std::vector<float> resumed_params;
  resumed.snapshot_params(resumed_params);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resumed_losses[static_cast<std::size_t>(i)],
              cont_losses[static_cast<std::size_t>(i + 3)])
        << "loss diverged after resume at step " << i + 3;
  }
  sh::testing::expect_allclose(resumed_params, cont_params, 0.0f, 0.0f);
}

TEST(Checkpoint, LoadMidTrainingRefreshesResidentLayers) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 51);
  const auto b0 = corpus.next_batch(2, mcfg.max_seq);
  const auto b1 = corpus.next_batch(2, mcfg.max_seq);

  nn::GptModel m1(mcfg);
  EngineConfig cfg;
  cfg.window = 2;
  StrongholdEngine engine(m1, cfg);
  engine.init_params(7);
  const std::string path = tmp("midload");
  engine.save_checkpoint(path);  // state S0
  const float loss_fresh = engine.train_step(b0);
  (void)engine.train_step(b1);   // drift away from S0
  engine.load_checkpoint(path);  // rewind to S0 while layers are resident
  const float loss_again = engine.train_step(b0);
  EXPECT_EQ(loss_again, loss_fresh);  // exact rewind
}

TEST(EngineTrace, RecordsOverlappingResources) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig cfg;
  cfg.window = 1;
  cfg.record_trace = true;
  cfg.h2d_bytes_per_s = 8e6;  // slow enough for visible spans
  cfg.d2h_bytes_per_s = 8e6;
  StrongholdEngine engine(model, cfg);
  engine.init_params(3);
  data::SyntheticCorpus corpus(mcfg.vocab, 4);
  for (int i = 0; i < 2; ++i) engine.train_step(corpus.next_batch(2, mcfg.max_seq));
  std::vector<float> scratch;
  engine.snapshot_params(scratch);  // quiesces in-flight background work

  const auto trace = engine.trace_snapshot();
  bool has_gpu = false, has_h2d = false, has_d2h = false, has_opt = false;
  for (const auto& span : trace.spans()) {
    has_gpu |= span.resource == "gpu";
    has_h2d |= span.resource == "h2d";
    has_d2h |= span.resource == "d2h";
    has_opt |= span.resource == "cpu-opt";
    EXPECT_GE(span.interval.duration(), 0.0);
  }
  EXPECT_TRUE(has_gpu);
  EXPECT_TRUE(has_h2d);
  EXPECT_TRUE(has_d2h);
  EXPECT_TRUE(has_opt);
  // Real asynchrony: some transfer time overlaps compute.
  EXPECT_GT(trace.overlap_fraction("h2d", "gpu") +
                trace.overlap_fraction("d2h", "gpu"),
            0.0);
}

TEST(EngineTrace, DisabledByDefault) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig cfg;
  cfg.window = 2;
  StrongholdEngine engine(model, cfg);
  engine.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 1);
  engine.train_step(corpus.next_batch(2, mcfg.max_seq));
  EXPECT_TRUE(engine.trace_snapshot().spans().empty());
}

}  // namespace
}  // namespace sh::core

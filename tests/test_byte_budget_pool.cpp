#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/byte_budget_pool.hpp"
#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

TEST(ByteBudgetPool, FirstFitAllocation) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  ByteBudgetPool pool(gpu, 100);
  float* a = pool.acquire(40);
  float* b = pool.acquire(40);
  EXPECT_EQ(b - a, 40);
  EXPECT_EQ(pool.floats_in_use(), 80u);
  EXPECT_EQ(pool.largest_free_region(), 20u);
  pool.release(a);
  // First fit reuses the freed head region.
  float* c = pool.acquire(30);
  EXPECT_EQ(c, a);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.floats_in_use(), 0u);
  EXPECT_EQ(pool.largest_free_region(), 100u);  // fully coalesced
}

TEST(ByteBudgetPool, CoalescesWithBothNeighbours) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  ByteBudgetPool pool(gpu, 90);
  float* a = pool.acquire(30);
  float* b = pool.acquire(30);
  float* c = pool.acquire(30);
  pool.release(a);
  pool.release(c);
  EXPECT_EQ(pool.largest_free_region(), 30u);  // two disjoint 30s
  pool.release(b);                             // merges all three
  EXPECT_EQ(pool.largest_free_region(), 90u);
}

TEST(ByteBudgetPool, OversizedRequestThrowsImmediately) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  ByteBudgetPool pool(gpu, 64);
  EXPECT_THROW(pool.acquire(65), hw::OomError);
  EXPECT_THROW(pool.acquire(0), std::invalid_argument);
}

TEST(ByteBudgetPool, BlocksUntilSpaceFrees) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  ByteBudgetPool pool(gpu, 64);
  float* a = pool.acquire(50);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    float* b = pool.acquire(40);
    got = true;
    pool.release(b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  pool.release(a);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(ByteBudgetPool, PoisonsReleasedRegions) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  ByteBudgetPool pool(gpu, 32);
  float* a = pool.acquire(32);
  for (int i = 0; i < 32; ++i) a[i] = 1.0f;
  pool.release(a);
  float* b = pool.acquire(32);
  ASSERT_EQ(b, a);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(std::isnan(b[i]));
  pool.release(b);
}

TEST(ByteBudgetPool, UnknownReleaseThrows) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  ByteBudgetPool pool(gpu, 32);
  float* a = pool.acquire(16);
  float foreign = 0.0f;
  EXPECT_THROW(pool.release(&foreign), std::logic_error);
  EXPECT_THROW(pool.release(a + 1), std::logic_error);  // interior pointer
  pool.release(a);
  EXPECT_THROW(pool.release(a), std::logic_error);  // double free
}

TEST(ByteBudgetPool, TracksPeakUsage) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  ByteBudgetPool pool(gpu, 100);
  float* a = pool.acquire(60);
  float* b = pool.acquire(30);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.peak_floats_in_use(), 90u);
  EXPECT_EQ(pool.total_acquisitions(), 2u);
}

TEST(ByteBudgetPool, ConcurrentChurnKeepsInvariants) {
  hw::MemoryPool gpu("gpu", 1 << 22);
  ByteBudgetPool pool(gpu, 4096);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::size_t n = 64 + 97 * static_cast<std::size_t>((t + i) % 7);
        float* p = pool.acquire(n);
        p[0] = 1.0f;
        p[n - 1] = 2.0f;
        pool.release(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.floats_in_use(), 0u);
  EXPECT_EQ(pool.live_regions(), 0u);
  EXPECT_EQ(pool.largest_free_region(), 4096u);
}

nn::GptConfig moe_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.moe_experts = 4;  // MoE blocks ~4x a dense block
  cfg.moe_every = 4;    // one big layer among small ones
  return cfg;
}

TEST(ByteBudgetEngine, HeterogeneousTrainingMatchesMonolithic) {
  const auto mcfg = moe_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 31);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.window_mode = WindowMode::ByteBudget;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(ByteBudgetEngine, FitsWhereUniformSlotsCannot) {
  // With one MoE block among dense blocks, uniform slots must all be sized
  // for the MoE block; a byte budget packs the actual sizes.
  const auto mcfg = moe_config();
  nn::GptModel probe(mcfg);
  std::int64_t max_params = 0;
  std::int64_t sum_small = 0;
  for (std::size_t i = 1; i + 1 < probe.num_layers(); ++i) {
    max_params = std::max(max_params, probe.layer(i).param_count());
  }
  for (std::size_t i = 1; i + 1 < probe.num_layers(); ++i) {
    if (probe.layer(i).param_count() != max_params) {
      sum_small += probe.layer(i).param_count();
    }
  }
  ASSERT_GT(max_params, 2 * sum_small / 3);  // genuinely heterogeneous

  // GPU big enough for pinned layers + ~1.5 max-size windows, but not for
  // 3 uniform max-size slots (window 2 -> 3 slots).
  const std::size_t pinned =
      2 * sizeof(float) *
      static_cast<std::size_t>(probe.layer(0).param_count() +
                               probe.layer(probe.num_layers() - 1)
                                   .param_count());
  const std::size_t slot_bytes =
      2 * sizeof(float) * static_cast<std::size_t>(max_params);
  const std::size_t gpu_mem = pinned + 2 * slot_bytes + slot_bytes / 2;

  nn::GptModel m1(mcfg);
  EngineConfig uniform;
  uniform.window = 2;
  uniform.gpu_memory_bytes = gpu_mem;
  EXPECT_THROW(StrongholdEngine(m1, uniform), hw::OomError);

  nn::GptModel m2(mcfg);
  EngineConfig budget;
  budget.window = 2;
  budget.gpu_memory_bytes = gpu_mem;
  budget.window_mode = WindowMode::ByteBudget;
  budget.window_budget_floats = 2 * static_cast<std::size_t>(max_params) +
                                2 * static_cast<std::size_t>(sum_small);
  StrongholdEngine engine(m2, budget);
  engine.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 2);
  const float loss = engine.train_step(corpus.next_batch(2, mcfg.max_seq));
  EXPECT_GT(loss, 0.0f);
}

}  // namespace
}  // namespace sh::core

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "mem/device_arena.hpp"
#include "mem/pool_policies.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

// Pool requests below are multiples of mem::kRegionAlign so offsets stay
// exact; off-multiple sizes round up (AlignsOddRequests covers that).

TEST(ByteBudgetPool, FirstFitAllocation) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 1600);
  std::byte* a = pool.acquire(640);
  std::byte* b = pool.acquire(640);
  EXPECT_EQ(b - a, 640);
  EXPECT_EQ(pool.bytes_in_use(), 1280u);
  EXPECT_EQ(pool.largest_free_region(), 320u);
  pool.release(a);
  // First fit reuses the freed head region.
  std::byte* c = pool.acquire(480);
  EXPECT_EQ(c, a);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.largest_free_region(), 1600u);  // fully coalesced
}

TEST(ByteBudgetPool, CoalescesWithBothNeighbours) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 1440);
  std::byte* a = pool.acquire(480);
  std::byte* b = pool.acquire(480);
  std::byte* c = pool.acquire(480);
  pool.release(a);
  pool.release(c);
  EXPECT_EQ(pool.largest_free_region(), 480u);  // two disjoint 480s
  pool.release(b);                              // merges all three
  EXPECT_EQ(pool.largest_free_region(), 1440u);
}

TEST(ByteBudgetPool, AlignsOddRequests) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 256);
  std::byte* a = pool.acquire(17);  // rounds up to 32
  std::byte* b = pool.acquire(16);
  EXPECT_EQ(b - a, 32);
  EXPECT_EQ(pool.bytes_in_use(), 48u);
  pool.release(a);
  pool.release(b);
}

TEST(ByteBudgetPool, OversizedRequestThrowsImmediately) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 64);
  EXPECT_THROW(pool.acquire(65), mem::OomError);
  EXPECT_THROW(pool.acquire(0), std::invalid_argument);
}

TEST(ByteBudgetPool, BlocksUntilSpaceFrees) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 1024);
  std::byte* a = pool.acquire(800);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    std::byte* b = pool.acquire(640);
    got = true;
    pool.release(b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  pool.release(a);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(ByteBudgetPool, PoisonsReleasedRegions) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 128);
  std::byte* a = pool.acquire(128);
  std::fill_n(a, 128, std::byte{0});
  pool.release(a);
  std::byte* b = pool.acquire(128);
  ASSERT_EQ(b, a);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(b[i], mem::kPoisonByte);
  pool.release(b);
}

TEST(ByteBudgetPool, UnknownReleaseThrows) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 128);
  std::byte* a = pool.acquire(64);
  std::byte foreign{0};
  EXPECT_THROW(pool.release(&foreign), std::logic_error);
  EXPECT_THROW(pool.release(a + 1), std::logic_error);  // interior pointer
  pool.release(a);
  EXPECT_THROW(pool.release(a), std::logic_error);  // double free
}

TEST(ByteBudgetPool, TracksPeakUsage) {
  mem::DeviceArena gpu("gpu", 1 << 20);
  mem::ByteBudgetPool pool(gpu, 1600);
  std::byte* a = pool.acquire(960);
  std::byte* b = pool.acquire(480);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.peak_bytes_in_use(), 1440u);
  EXPECT_EQ(pool.total_acquisitions(), 2u);
}

TEST(ByteBudgetPool, ConcurrentChurnKeepsInvariants) {
  mem::DeviceArena gpu("gpu", 1 << 22);
  mem::ByteBudgetPool pool(gpu, 16384);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::size_t n =
            256 + 97 * static_cast<std::size_t>((t + i) % 7);
        std::byte* p = pool.acquire(n);
        p[0] = std::byte{1};
        p[n - 1] = std::byte{2};
        pool.release(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.live_regions(), 0u);
  EXPECT_EQ(pool.largest_free_region(), 16384u);
}

nn::GptConfig moe_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.moe_experts = 4;  // MoE blocks ~4x a dense block
  cfg.moe_every = 4;    // one big layer among small ones
  return cfg;
}

TEST(ByteBudgetEngine, HeterogeneousTrainingMatchesMonolithic) {
  const auto mcfg = moe_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 31);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  nn::GptModel ref_model(mcfg);
  MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.window_mode = WindowMode::ByteBudget;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(ByteBudgetEngine, FitsWhereUniformSlotsCannot) {
  // With one MoE block among dense blocks, uniform slots must all be sized
  // for the MoE block; a byte budget packs the actual sizes.
  const auto mcfg = moe_config();
  nn::GptModel probe(mcfg);
  std::int64_t max_params = 0;
  std::int64_t sum_small = 0;
  for (std::size_t i = 1; i + 1 < probe.num_layers(); ++i) {
    max_params = std::max(max_params, probe.layer(i).param_count());
  }
  for (std::size_t i = 1; i + 1 < probe.num_layers(); ++i) {
    if (probe.layer(i).param_count() != max_params) {
      sum_small += probe.layer(i).param_count();
    }
  }
  ASSERT_GT(max_params, 2 * sum_small / 3);  // genuinely heterogeneous

  // GPU big enough for pinned layers + ~1.5 max-size windows, but not for
  // 3 uniform max-size slots (window 2 -> 3 slots).
  const std::size_t pinned =
      2 * sizeof(float) *
      static_cast<std::size_t>(probe.layer(0).param_count() +
                               probe.layer(probe.num_layers() - 1)
                                   .param_count());
  const std::size_t slot_bytes =
      2 * sizeof(float) * static_cast<std::size_t>(max_params);
  const std::size_t gpu_mem = pinned + 2 * slot_bytes + slot_bytes / 2;

  nn::GptModel m1(mcfg);
  EngineConfig uniform;
  uniform.window = 2;
  uniform.gpu_memory_bytes = gpu_mem;
  EXPECT_THROW(StrongholdEngine(m1, uniform), mem::OomError);

  nn::GptModel m2(mcfg);
  EngineConfig budget;
  budget.window = 2;
  budget.gpu_memory_bytes = gpu_mem;
  budget.window_mode = WindowMode::ByteBudget;
  budget.window_budget_floats = 2 * static_cast<std::size_t>(max_params) +
                                2 * static_cast<std::size_t>(sum_small);
  StrongholdEngine engine(m2, budget);
  engine.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 2);
  const float loss = engine.train_step(corpus.next_batch(2, mcfg.max_seq));
  EXPECT_GT(loss, 0.0f);
}

}  // namespace
}  // namespace sh::core

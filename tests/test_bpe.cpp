// BPE tokenizer and text corpus pipeline.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "data/bpe.hpp"
#include "data/text_corpus.hpp"

namespace sh::data {
namespace {

using namespace std::string_literals;

TEST(Bpe, ByteLevelRoundTripWithoutMerges) {
  BpeTokenizer tok;
  EXPECT_EQ(tok.vocab_size(), 256);
  const std::string text = "hello, world! \xc3\xa9\x00"s;
  const auto ids = tok.encode(text);
  EXPECT_EQ(ids.size(), text.size());
  EXPECT_EQ(tok.decode(ids), text);
}

TEST(Bpe, TrainingLearnsFrequentPairs) {
  const std::string text = "ababababababab abab abab";
  auto tok = BpeTokenizer::train(text, 256 + 4);
  EXPECT_GT(tok.num_merges(), 0u);
  // "ab" occurs constantly; the first merge must be ('a', 'b').
  EXPECT_EQ(tok.token_bytes(256), "ab");
  // Encoding compresses.
  const auto ids = tok.encode(text);
  EXPECT_LT(ids.size(), text.size());
  EXPECT_EQ(tok.decode(ids), text);
}

TEST(Bpe, RoundTripOnRealText) {
  const auto text = TextCorpus::sample_text();
  auto tok = BpeTokenizer::train(text, 400);
  const auto ids = tok.encode(text);
  EXPECT_EQ(tok.decode(ids), text);
  // Merges compress English text substantially.
  EXPECT_LT(ids.size(), text.size() * 3 / 4);
  for (std::int32_t id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, tok.vocab_size());
  }
}

TEST(Bpe, TrainingIsDeterministic) {
  const auto text = TextCorpus::sample_text();
  auto a = BpeTokenizer::train(text, 320);
  auto b = BpeTokenizer::train(text, 320);
  EXPECT_EQ(a.encode(text), b.encode(text));
}

TEST(Bpe, EncodeHandlesUnseenText) {
  auto tok = BpeTokenizer::train("aaaa bbbb aaaa bbbb", 260);
  // Bytes never seen in training still encode (byte-level base vocab).
  const std::string novel = "zq!\x7f";
  EXPECT_EQ(tok.decode(tok.encode(novel)), novel);
}

TEST(Bpe, SaveLoadPreservesBehaviour) {
  const auto text = TextCorpus::sample_text();
  auto tok = BpeTokenizer::train(text, 350);
  const std::string path = ::testing::TempDir() + "bpe_model.txt";
  tok.save(path);
  auto loaded = BpeTokenizer::load(path);
  EXPECT_EQ(loaded.vocab_size(), tok.vocab_size());
  EXPECT_EQ(loaded.encode(text), tok.encode(text));
}

TEST(Bpe, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "bpe_bad.txt";
  {
    std::ofstream os(path);
    os << "not-a-bpe-file";
  }
  EXPECT_THROW(BpeTokenizer::load(path), std::runtime_error);
  EXPECT_THROW(BpeTokenizer::load("/nonexistent/x"), std::runtime_error);
}

TEST(Bpe, RejectsTinyVocab) {
  EXPECT_THROW(BpeTokenizer::train("abc", 100), std::invalid_argument);
}

TEST(Bpe, TokenBytesBoundsChecked) {
  BpeTokenizer tok;
  EXPECT_THROW(tok.token_bytes(256), std::out_of_range);
  EXPECT_THROW(tok.token_bytes(-1), std::out_of_range);
}

TEST(TextCorpus, BatchesAreShiftedWindows) {
  auto corpus = TextCorpus::from_text(TextCorpus::sample_text(), 320, 7);
  const auto b = corpus.next_batch(4, 16);
  ASSERT_EQ(b.ids.size(), 64u);
  ASSERT_EQ(b.targets.size(), 64u);
  // Targets are the next token of the same window.
  for (std::size_t i = 0; i + 1 < 16; ++i) {
    EXPECT_EQ(b.targets[i], b.ids[i + 1]);
  }
  for (std::int32_t id : b.ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, corpus.vocab());
  }
}

TEST(TextCorpus, DeterministicInSeed) {
  auto a = TextCorpus::from_text(TextCorpus::sample_text(), 320, 9);
  auto b = TextCorpus::from_text(TextCorpus::sample_text(), 320, 9);
  EXPECT_EQ(a.next_batch(2, 8).ids, b.next_batch(2, 8).ids);
}

TEST(TextCorpus, RejectsOverlongSequences) {
  TextCorpus corpus("tiny text", BpeTokenizer(), 1);
  EXPECT_THROW(corpus.next_batch(1, 1000), std::invalid_argument);
}

}  // namespace
}  // namespace sh::data

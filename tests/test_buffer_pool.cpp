#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/buffer_pool.hpp"
#include "hw/memory_pool.hpp"

namespace sh::core {
namespace {

TEST(BufferPool, ReservesSlotsUpFront) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 100, 4);
  EXPECT_EQ(pool.num_slots(), 4u);
  EXPECT_EQ(pool.free_slots(), 4u);
  EXPECT_EQ(gpu.used(), 4u * 100u * sizeof(float));
}

TEST(BufferPool, RoundRobinRecycling) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 16, 3);
  float* a = pool.acquire();
  float* b = pool.acquire();
  float* c = pool.acquire();
  EXPECT_EQ(pool.free_slots(), 0u);
  pool.release(b);
  pool.release(a);
  // FIFO free list: the first released slot is handed out first.
  EXPECT_EQ(pool.acquire(), b);
  EXPECT_EQ(pool.acquire(), a);
  pool.release(c);
  EXPECT_EQ(pool.acquire(), c);
  pool.release(a);
  pool.release(b);
  pool.release(c);
}

TEST(BufferPool, ReleasePoisonsSlot) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 1);
  float* s = pool.acquire();
  for (int i = 0; i < 8; ++i) s[i] = 1.0f;
  pool.release(s);
  float* again = pool.acquire();
  ASSERT_EQ(again, s);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(std::isnan(again[i])) << "slot not poisoned at " << i;
  }
  pool.release(again);
}

TEST(BufferPool, DoubleReleaseThrows) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 2);
  float* s = pool.acquire();
  pool.release(s);
  EXPECT_THROW(pool.release(s), std::logic_error);
}

TEST(BufferPool, ForeignPointerReleaseThrows) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 1);
  float foreign = 0.0f;
  EXPECT_THROW(pool.release(&foreign), std::logic_error);
}

TEST(BufferPool, TryAcquireDoesNotBlock) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 1);
  float* s = pool.try_acquire();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  pool.release(s);
  EXPECT_NE(pool.try_acquire(), nullptr);
}

TEST(BufferPool, AcquireBlocksUntilRelease) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 1);
  float* s = pool.acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    float* t = pool.acquire();
    acquired = true;
    pool.release(t);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  pool.release(s);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(BufferPool, GrowAddsSlotsNeverShrinks) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 2);
  pool.grow(8, 5);
  EXPECT_EQ(pool.num_slots(), 5u);
  pool.grow(8, 3);  // smaller request: no shrink
  EXPECT_EQ(pool.num_slots(), 5u);
}

TEST(BufferPool, GrowSlotSizeReallocates) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 2);
  pool.grow(32, 3);
  EXPECT_EQ(pool.slot_floats(), 32u);
  EXPECT_EQ(pool.num_slots(), 3u);
  EXPECT_EQ(gpu.used(), 3u * 32u * sizeof(float));
}

TEST(BufferPool, GrowSlotSizeWhileInUseThrows) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 2);
  float* s = pool.acquire();
  EXPECT_THROW(pool.grow(32, 2), std::logic_error);
  pool.release(s);
}

TEST(BufferPool, GrowBeyondGpuCapacityRaisesOom) {
  hw::MemoryPool gpu("gpu", 10 * 8 * sizeof(float));
  BufferPool pool(gpu, 8, 5);
  EXPECT_THROW(pool.grow(8, 100), hw::OomError);
}

TEST(BufferPool, OwnsIdentifiesSlots) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 2);
  float* s = pool.acquire();
  EXPECT_TRUE(pool.owns(s));
  float foreign = 0.0f;
  EXPECT_FALSE(pool.owns(&foreign));
  pool.release(s);
}

TEST(BufferPool, CountsAcquisitions) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 8, 2);
  float* a = pool.acquire();
  float* b = pool.acquire();
  pool.release(a);
  pool.release(b);
  pool.release(pool.acquire());
  EXPECT_EQ(pool.total_acquisitions(), 3u);
}

TEST(BufferPool, ConcurrentAcquireReleaseStress) {
  hw::MemoryPool gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 4, 3);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        float* s = pool.acquire();
        s[0] = 1.0f;  // touch
        pool.release(s);
        total.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), 800);
  EXPECT_EQ(pool.free_slots(), 3u);
}

}  // namespace
}  // namespace sh::core

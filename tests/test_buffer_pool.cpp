#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mem/device_arena.hpp"
#include "mem/pool_policies.hpp"

namespace sh::mem {
namespace {

TEST(BufferPool, ReservesSlotsUpFront) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 400, 4);
  EXPECT_EQ(pool.num_slots(), 4u);
  EXPECT_EQ(pool.free_slots(), 4u);
  EXPECT_EQ(gpu.used(), 4u * 400u);
}

TEST(BufferPool, RoundRobinRecycling) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 64, 3);
  std::byte* a = pool.acquire();
  std::byte* b = pool.acquire();
  std::byte* c = pool.acquire();
  EXPECT_EQ(pool.free_slots(), 0u);
  pool.release(b);
  pool.release(a);
  // FIFO free list: the first released slot is handed out first.
  EXPECT_EQ(pool.acquire(), b);
  EXPECT_EQ(pool.acquire(), a);
  pool.release(c);
  EXPECT_EQ(pool.acquire(), c);
  pool.release(a);
  pool.release(b);
  pool.release(c);
}

TEST(BufferPool, ReleasePoisonsSlot) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 1);
  std::byte* s = pool.acquire();
  std::fill_n(s, 32, std::byte{0});
  pool.release(s);
  std::byte* again = pool.acquire();
  ASSERT_EQ(again, s);
  // Every byte 0xFF: a NaN bit pattern under f32 and bf16 alike.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(again[i], kPoisonByte) << "slot not poisoned at " << i;
  }
  pool.release(again);
}

TEST(BufferPool, DoubleReleaseThrows) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 2);
  std::byte* s = pool.acquire();
  pool.release(s);
  EXPECT_THROW(pool.release(s), std::logic_error);
}

TEST(BufferPool, ForeignPointerReleaseThrows) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 1);
  std::byte foreign{0};
  EXPECT_THROW(pool.release(&foreign), std::logic_error);
}

TEST(BufferPool, TryAcquireDoesNotBlock) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 1);
  std::byte* s = pool.try_acquire();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  pool.release(s);
  EXPECT_NE(pool.try_acquire(), nullptr);
}

TEST(BufferPool, AcquireBlocksUntilRelease) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 1);
  std::byte* s = pool.acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    std::byte* t = pool.acquire();
    acquired = true;
    pool.release(t);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  pool.release(s);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(BufferPool, GrowAddsSlotsNeverShrinks) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 2);
  pool.grow(32, 5);
  EXPECT_EQ(pool.num_slots(), 5u);
  pool.grow(32, 3);  // smaller request: no shrink
  EXPECT_EQ(pool.num_slots(), 5u);
}

TEST(BufferPool, GrowSlotSizeReallocates) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 2);
  pool.grow(128, 3);
  EXPECT_EQ(pool.slot_bytes(), 128u);
  EXPECT_EQ(pool.num_slots(), 3u);
  EXPECT_EQ(gpu.used(), 3u * 128u);
}

TEST(BufferPool, GrowSlotSizeWhileInUseThrows) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 2);
  std::byte* s = pool.acquire();
  EXPECT_THROW(pool.grow(128, 2), std::logic_error);
  pool.release(s);
}

TEST(BufferPool, GrowBeyondGpuCapacityRaisesOom) {
  DeviceArena gpu("gpu", 10 * 32);
  BufferPool pool(gpu, 32, 5);
  EXPECT_THROW(pool.grow(32, 100), OomError);
}

TEST(BufferPool, OwnsIdentifiesSlots) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 2);
  std::byte* s = pool.acquire();
  EXPECT_TRUE(pool.owns(s));
  std::byte foreign{0};
  EXPECT_FALSE(pool.owns(&foreign));
  pool.release(s);
}

TEST(BufferPool, CountsAcquisitions) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 32, 2);
  std::byte* a = pool.acquire();
  std::byte* b = pool.acquire();
  pool.release(a);
  pool.release(b);
  pool.release(pool.acquire());
  EXPECT_EQ(pool.total_acquisitions(), 3u);
}

TEST(BufferPool, ConcurrentAcquireReleaseStress) {
  DeviceArena gpu("gpu", 1 << 20);
  BufferPool pool(gpu, 16, 3);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        std::byte* s = pool.acquire();
        s[0] = std::byte{1};  // touch
        pool.release(s);
        total.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), 800);
  EXPECT_EQ(pool.free_slots(), 3u);
}

}  // namespace
}  // namespace sh::mem

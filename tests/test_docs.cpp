// Documentation-vs-code contracts: the README Quickstart block must equal
// the compiled examples/quickstart_readme.cpp (minus its header comment), so
// the snippet users copy is the snippet CI builds.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

/// First fenced ```cpp block after `heading`.
std::string extract_cpp_block(const std::string& markdown,
                              const std::string& heading) {
  const std::size_t h = markdown.find(heading);
  EXPECT_NE(h, std::string::npos) << "heading not found: " << heading;
  const std::string open = "```cpp\n";
  const std::size_t start = markdown.find(open, h);
  EXPECT_NE(start, std::string::npos) << "no ```cpp block after " << heading;
  const std::size_t body = start + open.size();
  const std::size_t end = markdown.find("```", body);
  EXPECT_NE(end, std::string::npos) << "unterminated code block";
  return markdown.substr(body, end - body);
}

/// The file with its leading "//" comment lines (and following blank lines)
/// stripped — what the README block is expected to equal.
std::string strip_header_comment(const std::string& source) {
  std::size_t pos = 0;
  while (pos < source.size()) {
    const std::size_t eol = source.find('\n', pos);
    const std::string line = source.substr(pos, eol - pos);
    if (line.rfind("//", 0) != 0 && !line.empty()) break;
    if (eol == std::string::npos) return "";
    pos = eol + 1;
  }
  return source.substr(pos);
}

TEST(Docs, ReadmeQuickstartMatchesCompiledExample) {
  const std::string root = SH_SOURCE_DIR;
  const std::string readme = read_file(root + "/README.md");
  const std::string example =
      read_file(root + "/examples/quickstart_readme.cpp");

  const std::string block = extract_cpp_block(readme, "## Quickstart");
  const std::string compiled = strip_header_comment(example);
  EXPECT_EQ(block, compiled)
      << "README Quickstart and examples/quickstart_readme.cpp have "
         "drifted apart; update both together.";
}

TEST(Docs, ReadmeMentionsTheCompiledQuickstart) {
  const std::string readme =
      read_file(std::string(SH_SOURCE_DIR) + "/README.md");
  EXPECT_NE(readme.find("examples/quickstart_readme.cpp"), std::string::npos);
}

TEST(Docs, MemoryTiersWorkedExampleMatchesCompiledExample) {
  const std::string root = SH_SOURCE_DIR;
  const std::string doc = read_file(root + "/docs/MEMORY_TIERS.md");
  const std::string example = read_file(root + "/examples/capacity_readme.cpp");

  const std::string block = extract_cpp_block(doc, "## Worked example");
  const std::string compiled = strip_header_comment(example);
  EXPECT_EQ(block, compiled)
      << "docs/MEMORY_TIERS.md worked example and "
         "examples/capacity_readme.cpp have drifted apart; "
         "update both together.";
}

TEST(Docs, MemoryTiersIsLinkedFromReadmeAndDesign) {
  const std::string root = SH_SOURCE_DIR;
  EXPECT_NE(read_file(root + "/README.md").find("docs/MEMORY_TIERS.md"),
            std::string::npos);
  EXPECT_NE(read_file(root + "/DESIGN.md").find("docs/MEMORY_TIERS.md"),
            std::string::npos);
  EXPECT_NE(read_file(root + "/docs/MEMORY_TIERS.md")
                .find("examples/capacity_readme.cpp"),
            std::string::npos);
}

}  // namespace

// End-to-end correctness of the STRONGHOLD offload engine: offloaded,
// windowed, concurrently-updated training must match conventional monolithic
// training exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "storage/fault_plan.hpp"
#include "testing/util.hpp"

namespace sh::core {
namespace {

nn::GptConfig tiny_config(bool checkpoint = false) {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.checkpoint_activations = checkpoint;
  return cfg;
}

std::vector<data::Batch> make_batches(std::int64_t bs, std::int64_t seq,
                                      int count, std::uint64_t seed = 99) {
  data::SyntheticCorpus corpus(32, seed);
  std::vector<data::Batch> out;
  for (int i = 0; i < count; ++i) out.push_back(corpus.next_batch(bs, seq));
  return out;
}

/// Trains `steps` iterations through the engine and returns the final
/// parameter snapshot and losses.
std::pair<std::vector<float>, std::vector<float>> run_engine(
    const nn::GptConfig& mcfg, EngineConfig ecfg,
    const std::vector<data::Batch>& batches) {
  nn::GptModel model(mcfg);
  StrongholdEngine engine(model, std::move(ecfg));
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  return {params, losses};
}

std::pair<std::vector<float>, std::vector<float>> run_monolithic(
    const nn::GptConfig& mcfg, const std::vector<data::Batch>& batches) {
  nn::GptModel model(mcfg);
  MonolithicTrainer trainer(model, optim::AdamConfig{});
  trainer.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(trainer.train_step(b));
  std::vector<float> params;
  trainer.snapshot_params(params);
  return {params, losses};
}

TEST(Engine, OffloadedTrainingMatchesMonolithicBitwise) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 3);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  EngineConfig ecfg;
  ecfg.window = 2;
  const auto [params, losses] = run_engine(mcfg, ecfg, batches);

  ASSERT_EQ(params.size(), ref_params.size());
  for (std::size_t i = 0; i < losses.size(); ++i) {
    EXPECT_EQ(losses[i], ref_losses[i]) << "loss diverged at step " << i;
  }
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

class WindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowSweep, EveryWindowSizeIsExact) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  EngineConfig ecfg;
  ecfg.window = GetParam();
  const auto [params, losses] = run_engine(mcfg, ecfg, batches);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Engine, ThrottledTransfersDoNotChangeResults) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.h2d_bytes_per_s = 4e6;  // slow enough to provoke real stalls
  ecfg.d2h_bytes_per_s = 4e6;
  const auto [params, losses] = run_engine(mcfg, ecfg, batches);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Engine, CheckpointedActivationsMatchMonolithic) {
  const auto mcfg = tiny_config(/*checkpoint=*/true);
  const auto batches = make_batches(2, mcfg.max_seq, 2);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);
  EngineConfig ecfg;
  ecfg.window = 2;
  const auto [params, losses] = run_engine(mcfg, ecfg, batches);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Engine, MultiExecutorMatchesSingleExecutor) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(4, mcfg.max_seq, 2);

  EngineConfig single;
  single.window = 2;
  const auto [p1, l1] = run_engine(mcfg, single, batches);

  EngineConfig multi;
  multi.window = 2;
  multi.num_executors = 2;
  const auto [p2, l2] = run_engine(mcfg, multi, batches);

  // Micro-batch splitting reorders float additions; results agree to a tight
  // tolerance but not bitwise.
  for (std::size_t i = 0; i < l1.size(); ++i) {
    EXPECT_NEAR(l1[i], l2[i], 1e-5f);
  }
  sh::testing::expect_allclose(p2, p1, 1e-5f, 1e-4f);
}

TEST(Engine, FourExecutorsStillCorrect) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(4, mcfg.max_seq, 1);
  EngineConfig single;
  single.window = 3;
  const auto [p1, l1] = run_engine(mcfg, single, batches);
  EngineConfig multi;
  multi.window = 3;
  multi.num_executors = 4;
  const auto [p4, l4] = run_engine(mcfg, multi, batches);
  EXPECT_NEAR(l1[0], l4[0], 1e-5f);
  sh::testing::expect_allclose(p4, p1, 1e-5f, 1e-4f);
}

TEST(Engine, SwapTierTrainingMatchesInMemory) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  EngineConfig ecfg;
  ecfg.window = 1;
  // Budget only covers the first couple of layers; the rest live on "NVMe".
  ecfg.cpu_capacity_bytes = 64 * 1024;
  ecfg.swap_path = ::testing::TempDir() + "engine_swap.bin";
  nn::GptModel model(mcfg);
  StrongholdEngine engine(model, ecfg);
  EXPECT_GT(engine.stats().swap_backed_layers, 0u);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Engine, FaultyTierLossBitIdentical) {
  // Training against an unhealthy NVMe tier (latency spikes, short ops and
  // transient EIOs on ~90% of attempts) must degrade gracefully: the window
  // stalls while the tier retries, and the numbers are bit-identical to a
  // healthy-tier run because retried ops are idempotent.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);

  EngineConfig healthy;
  healthy.window = 1;
  healthy.cpu_capacity_bytes = 64 * 1024;
  healthy.swap_path = ::testing::TempDir() + "engine_swap_healthy.bin";
  const auto [ref_params, ref_losses] = run_engine(mcfg, healthy, batches);

  EngineConfig faulted = healthy;
  faulted.swap_path = ::testing::TempDir() + "engine_swap_faulted.bin";
  faulted.swap_faults.rate = 0.9;
  faulted.swap_faults.seed = 2026;
  faulted.swap_faults.latency_spike_s = 1e-4;
  faulted.swap_faults.max_faults_per_op = 2;  // bounded: attempt 2 recovers
  faulted.swap_faults.max_attempts = 4;
  faulted.swap_faults.backoff_initial_s = 1e-5;

  nn::GptModel model(mcfg);
  StrongholdEngine engine(model, faulted);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);

  const auto s = engine.stats();
  EXPECT_GT(s.swap_faults_injected, 0u) << "fault plan never fired";
  EXPECT_GT(s.swap_retries, 0u) << "no retry was exercised";
  EXPECT_EQ(s.swap_io_errors, 0u) << "bounded faults must all recover";
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Engine, FaultBudgetExhaustedRaisesIoError) {
  // A permanently failing tier (every read attempt EIOs, budget SIZE_MAX)
  // must surface as a typed storage::IoError from train_step — the trainer
  // can checkpoint — not as an abort or a hang. The engine must still tear
  // down cleanly afterwards.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 1);
  EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.cpu_capacity_bytes = 64 * 1024;
  ecfg.swap_path = ::testing::TempDir() + "engine_swap_dead.bin";
  ecfg.swap_faults.rate = 1.0;
  ecfg.swap_faults.latency_weight = 0.0;
  ecfg.swap_faults.short_weight = 0.0;
  ecfg.swap_faults.fault_writes = false;  // init_params can seed the tier
  ecfg.swap_faults.max_faults_per_op =
      std::numeric_limits<std::size_t>::max();
  ecfg.swap_faults.max_attempts = 3;
  ecfg.swap_faults.backoff_initial_s = 1e-5;

  nn::GptModel model(mcfg);
  {
    StrongholdEngine engine(model, ecfg);
    engine.init_params(42);
    EXPECT_GT(engine.stats().swap_backed_layers, 0u);
    EXPECT_THROW(engine.train_step(batches[0]), storage::IoError);
    EXPECT_GT(engine.stats().swap_io_errors, 0u);
  }  // destructor joins the workers without hanging or rethrowing
}

TEST(Engine, AutoWindowSelectsAndFreezes) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 4);
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 0;  // automatic
  ecfg.warmup_iterations = 2;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(1);
  for (const auto& b : batches) engine.train_step(b);
  const auto s = engine.stats();
  EXPECT_TRUE(s.window_auto_selected);
  EXPECT_GE(s.window, 1u);
  EXPECT_LE(s.window, static_cast<std::size_t>(mcfg.layers));
  EXPECT_EQ(s.iterations, batches.size());
}

TEST(Engine, AutoWindowStillMatchesMonolithic) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 4);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);
  EngineConfig ecfg;
  ecfg.window = 0;
  ecfg.warmup_iterations = 1;
  const auto [params, losses] = run_engine(mcfg, ecfg, batches);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Engine, OomWhenGpuCannotHoldWindow) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 4;
  ecfg.gpu_memory_bytes = 16 * 1024;  // pinned layers alone exceed this
  EXPECT_THROW(StrongholdEngine(model, ecfg), mem::OomError);
}

TEST(Engine, TracksTransferAndStallStatistics) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.h2d_bytes_per_s = 2e6;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(7);
  for (const auto& b : batches) engine.train_step(b);
  const auto s = engine.stats();
  EXPECT_GT(s.h2d_transfers, 0u);
  EXPECT_GT(s.d2h_transfers, 0u);
  EXPECT_GT(s.h2d_bytes, 0u);
  EXPECT_GT(s.optimizer_updates, 0u);
  // A window of one with a slow link must stall at least once.
  EXPECT_GT(s.prefetch_stalls, 0u);
  EXPECT_GT(s.gpu_high_water_bytes, 0u);
}

TEST(Engine, LossDecreasesOnLearnableData) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(32, 5);
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 3e-3f;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(3);
  const int steps = 120;
  std::vector<float> losses;
  for (int i = 0; i < steps; ++i) {
    losses.push_back(engine.train_step(corpus.next_batch(4, mcfg.max_seq)));
  }
  auto mean = [&](int lo, int hi) {
    float s = 0.0f;
    for (int i = lo; i < hi; ++i) s += losses[static_cast<std::size_t>(i)];
    return s / static_cast<float>(hi - lo);
  };
  const float early = mean(0, 10);
  const float late = mean(steps - 10, steps);
  EXPECT_LT(late, early * 0.8f) << "training did not reduce the loss (early "
                                << early << ", late " << late << ")";
}

TEST(Engine, InferenceMatchesAcrossWindowSizes) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(32, 11);
  const auto batch = corpus.next_batch(2, mcfg.max_seq);
  const nn::BatchShape shape{2, mcfg.max_seq};

  nn::GptModel m1(mcfg), m2(mcfg);
  EngineConfig c1;
  c1.window = 1;
  EngineConfig c2;
  c2.window = 4;
  StrongholdEngine e1(m1, c1), e2(m2, c2);
  e1.init_params(21);
  e2.init_params(21);
  auto out1 = e1.inference(batch.ids, shape);
  auto out2 = e2.inference(batch.ids, shape);
  sh::testing::expect_allclose(out1.span(), out2.span(), 0.0f, 0.0f);
}

TEST(Engine, InferenceObserverSeesEveryBlock) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(32, 13);
  const auto batch = corpus.next_batch(1, mcfg.max_seq);
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(9);
  std::vector<std::size_t> seen;
  engine.inference(batch.ids, {1, mcfg.max_seq},
                   [&](std::size_t layer, const tensor::Tensor& act) {
                     seen.push_back(layer);
                     EXPECT_EQ(act.shape().dim(1), mcfg.hidden);
                   });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(mcfg.layers));
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(Engine, TrainingAfterInferenceStaysCorrect) {
  const auto mcfg = tiny_config();
  const auto batches = make_batches(2, mcfg.max_seq, 2);
  const auto [ref_params, ref_losses] = run_monolithic(mcfg, batches);

  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  (void)engine.inference(batches[0].ids, {2, mcfg.max_seq});
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(Engine, RejectsInvalidConfigs) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig bad_exec;
  bad_exec.num_executors = 0;
  EXPECT_THROW(StrongholdEngine(model, bad_exec), std::invalid_argument);

  EngineConfig bad_swap;
  bad_swap.cpu_capacity_bytes = 1024;  // capacity without a swap path
  EXPECT_THROW(StrongholdEngine(model, bad_swap), std::invalid_argument);
}

TEST(Engine, RejectsIndivisibleBatchForExecutors) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.num_executors = 2;
  StrongholdEngine engine(model, ecfg);
  engine.init_params(1);
  data::SyntheticCorpus corpus(32, 1);
  auto batch = corpus.next_batch(3, mcfg.max_seq);  // 3 % 2 != 0
  EXPECT_THROW(engine.train_step(batch), std::invalid_argument);
}

}  // namespace
}  // namespace sh::core

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/rng.hpp"

namespace sh::tensor {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalHasApproxZeroMeanUnitVariance) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(3);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.next_below(8)];
  for (int h : hits) EXPECT_GT(h, 800);  // roughly uniform
}

TEST(Rng, FillUniformRespectsAmplitude) {
  Rng rng(21);
  std::vector<float> v(1000);
  rng.fill_uniform(v, 0.25f);
  for (float x : v) {
    EXPECT_GE(x, -0.25f);
    EXPECT_LT(x, 0.25f);
  }
}

TEST(Rng, StateRoundTripReplaysStream) {
  Rng rng(1234);
  for (int i = 0; i < 17; ++i) rng.next_u64();
  const RngState saved = rng.save_state();
  std::vector<std::uint64_t> expected(64);
  for (auto& v : expected) v = rng.next_u64();

  Rng resumed(999);  // different seed: load_state must fully overwrite
  resumed.load_state(saved);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resumed.next_u64(), expected[i]) << "at draw " << i;
  }
}

TEST(Rng, StateRoundTripPreservesBoxMullerSpare) {
  // next_normal draws pairs and caches a spare; a round trip in the middle
  // of a pair must replay the cached value, not redraw.
  Rng rng(77);
  (void)rng.next_normal();  // leaves a spare cached
  const RngState saved = rng.save_state();
  std::vector<float> expected(9);
  for (auto& v : expected) v = rng.next_normal();

  Rng resumed(5);
  resumed.load_state(saved);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resumed.next_normal(), expected[i]) << "at draw " << i;
  }
}

TEST(Rng, FillNormalScalesStddev) {
  Rng rng(31);
  std::vector<float> v(50000);
  rng.fill_normal(v, 2.0f);
  double sumsq = 0;
  for (float x : v) sumsq += static_cast<double>(x) * x;
  EXPECT_NEAR(std::sqrt(sumsq / v.size()), 2.0, 0.05);
}

}  // namespace
}  // namespace sh::tensor

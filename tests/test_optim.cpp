#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "optim/optimizer.hpp"

namespace sh::optim {
namespace {

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Sgd sgd({.lr = 0.1f, .momentum = 0.0f});
  EXPECT_EQ(sgd.state_per_param(), 0);
  std::vector<float> p = {1.0f, -2.0f};
  std::vector<float> g = {0.5f, -0.5f};
  sgd.step(p.data(), g.data(), nullptr, 1, 2);
  EXPECT_FLOAT_EQ(p[0], 0.95f);
  EXPECT_FLOAT_EQ(p[1], -1.95f);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd sgd({.lr = 1.0f, .momentum = 0.5f});
  EXPECT_EQ(sgd.state_per_param(), 1);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  std::vector<float> state = {0.0f};
  sgd.step(p.data(), g.data(), state.data(), 1, 1);
  EXPECT_FLOAT_EQ(p[0], -1.0f);  // v = 1
  sgd.step(p.data(), g.data(), state.data(), 2, 1);
  EXPECT_FLOAT_EQ(p[0], -2.5f);  // v = 1.5
}

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  Adam adam({.lr = 0.01f});
  std::vector<float> p = {1.0f};
  std::vector<float> g = {123.0f};
  std::vector<float> state(2, 0.0f);
  adam.step(p.data(), g.data(), state.data(), 1, 1);
  EXPECT_NEAR(p[0], 1.0f - 0.01f, 1e-5f);
}

TEST(Adam, MatchesScalarReferenceOverManySteps) {
  const AdamConfig cfg{.lr = 0.1f, .beta1 = 0.9f, .beta2 = 0.99f, .eps = 1e-8f};
  Adam adam(cfg);
  float p = 2.0f;
  std::vector<float> state(2, 0.0f);
  // Reference implementation.
  double rp = 2.0, rm = 0.0, rv = 0.0;
  for (int t = 1; t <= 50; ++t) {
    const float g = static_cast<float>(rp);  // gradient of 0.5*p^2 at ref point
    float pf = p;
    adam.step(&pf, &g, state.data(), t, 1);
    rm = cfg.beta1 * rm + (1 - cfg.beta1) * g;
    rv = cfg.beta2 * rv + (1 - cfg.beta2) * static_cast<double>(g) * g;
    const double mhat = rm / (1 - std::pow(cfg.beta1, t));
    const double vhat = rv / (1 - std::pow(cfg.beta2, t));
    rp = rp - cfg.lr * mhat / (std::sqrt(vhat) + cfg.eps);
    p = pf;
    ASSERT_NEAR(p, rp, 1e-4) << "step " << t;
  }
  // Adam on a convex quadratic must approach the optimum.
  EXPECT_LT(std::abs(p), 2.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam adam({.lr = 0.05f});
  std::vector<float> p = {5.0f, -3.0f};
  std::vector<float> state(4, 0.0f);
  for (int t = 1; t <= 500; ++t) {
    std::vector<float> g = {p[0], p[1]};
    adam.step(p.data(), g.data(), state.data(), t, 2);
  }
  EXPECT_NEAR(p[0], 0.0f, 0.05f);
  EXPECT_NEAR(p[1], 0.0f, 0.05f);
}

TEST(Adam, WeightDecayShrinksParams) {
  Adam plain({.lr = 0.01f, .weight_decay = 0.0f});
  Adam decayed({.lr = 0.01f, .weight_decay = 0.5f});
  float p1 = 1.0f, p2 = 1.0f;
  std::vector<float> s1(2, 0.0f), s2(2, 0.0f);
  const float g = 0.0f;
  plain.step(&p1, &g, s1.data(), 1, 1);
  decayed.step(&p2, &g, s2.data(), 1, 1);
  EXPECT_LT(p2, p1);
}

TEST(Adam, CloneIsIndependentButEquivalent) {
  Adam adam({.lr = 0.07f});
  auto copy = adam.clone();
  EXPECT_EQ(copy->state_per_param(), 2);
  float pa = 1.0f, pb = 1.0f;
  std::vector<float> sa(2, 0.0f), sb(2, 0.0f);
  const float g = 0.3f;
  adam.step(&pa, &g, sa.data(), 1, 1);
  copy->step(&pb, &g, sb.data(), 1, 1);
  EXPECT_FLOAT_EQ(pa, pb);
}

TEST(Adam, StateLayoutIsMomentumThenVariance) {
  Adam adam({.lr = 1.0f, .beta1 = 0.5f, .beta2 = 0.5f});
  std::vector<float> p = {0.0f, 0.0f};
  std::vector<float> g = {2.0f, 4.0f};
  std::vector<float> state(4, 0.0f);
  adam.step(p.data(), g.data(), state.data(), 1, 2);
  // m = (1-b1)*g, stored first; v = (1-b2)*g^2 stored second.
  EXPECT_FLOAT_EQ(state[0], 1.0f);
  EXPECT_FLOAT_EQ(state[1], 2.0f);
  EXPECT_FLOAT_EQ(state[2], 2.0f);
  EXPECT_FLOAT_EQ(state[3], 8.0f);
}

}  // namespace
}  // namespace sh::optim

// Fused tiled attention kernel (tensor/attention_kernel.cpp) against the
// materialised-probs reference implementation it replaced as the default:
//
//   * fused-vs-reference numeric agreement for forward, input gradient and
//     parameter gradients across (batch, heads, head_dim, seq) — including
//     sequence lengths that straddle the query-panel (96) and key-tile (256)
//     boundaries, where off-by-one tile logic would show;
//   * KV-cached incremental decode equality, fused vs reference;
//   * the repo's determinism invariant with the fused path explicitly on:
//     offloaded training losses EXPECT_EQ monolithic ones;
//   * batched continuous decoding across forced KV preempt/resume matches
//     solo generation token-for-token with the fused path explicitly on.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "nn/attention.hpp"
#include "nn/module.hpp"
#include "serve/scheduler.hpp"
#include "tensor/attention_kernel.hpp"
#include "tensor/rng.hpp"
#include "testing/util.hpp"

namespace sh::nn {
namespace {

/// Restores the fused-attention default no matter how a test exits.
struct FusedGuard {
  ~FusedGuard() { tensor::set_use_fused_attention(true); }
};

struct AttnCase {
  std::int64_t batch;
  std::int64_t heads;
  std::int64_t head_dim;
  std::int64_t seq;
};

void PrintTo(const AttnCase& c, std::ostream* os) {
  *os << "b" << c.batch << "_h" << c.heads << "_d" << c.head_dim << "_s"
      << c.seq;
}

struct RunResult {
  std::vector<float> y;      // forward output
  std::vector<float> gx;     // input gradient
  std::vector<float> grads;  // parameter gradients
};

RunResult run_layer(const AttnCase& c, bool fused) {
  FusedGuard guard;
  tensor::set_use_fused_attention(fused);

  const std::int64_t hidden = c.heads * c.head_dim;
  CausalSelfAttention attn("t.attn", hidden, c.heads);
  OwnedStorage store(attn.param_count());
  attn.bind(store.params(), store.grads());
  tensor::Rng rng(21);
  attn.init(rng);

  BatchShape shape;
  shape.batch = c.batch;
  shape.seq = c.seq;
  shape.training = true;
  const std::int64_t tokens = shape.tokens();

  auto x = tensor::Tensor::zeros({tokens, hidden});
  auto gy = tensor::Tensor::zeros({tokens, hidden});
  tensor::Rng data_rng(5);
  data_rng.fill_uniform(
      std::span<float>(x.data(), static_cast<std::size_t>(x.numel())), 1.0f);
  data_rng.fill_uniform(
      std::span<float>(gy.data(), static_cast<std::size_t>(gy.numel())), 1.0f);

  RunResult r;
  auto y = attn.forward(x, shape);
  r.y.assign(y.data(), y.data() + y.numel());
  auto gx = attn.backward(gy, shape);
  r.gx.assign(gx.data(), gx.data() + gx.numel());
  r.grads.assign(store.grads(), store.grads() + store.count());
  return r;
}

class FusedVsReference : public ::testing::TestWithParam<AttnCase> {};

TEST_P(FusedVsReference, ForwardAndBackwardAgree) {
  const auto c = GetParam();
  const auto fused = run_layer(c, true);
  const auto ref = run_layer(c, false);
  // Different summation orders (online-softmax tiles vs one full-row pass),
  // so agreement is tight-tolerance, not bitwise.
  sh::testing::expect_allclose(fused.y, ref.y, 1e-5f, 1e-4f);
  sh::testing::expect_allclose(fused.gx, ref.gx, 1e-4f, 1e-3f);
  sh::testing::expect_allclose(fused.grads, ref.grads, 1e-4f, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusedVsReference,
    ::testing::Values(
        // Degenerate and tiny shapes.
        AttnCase{1, 1, 4, 1}, AttnCase{1, 2, 8, 5}, AttnCase{2, 2, 4, 13},
        // Query-panel boundary (kQB = 96): one full panel, one spilling row.
        AttnCase{1, 2, 8, 96}, AttnCase{1, 2, 8, 97},
        // Multi-head, head_dim straddling the packed micro-tile width.
        AttnCase{2, 3, 16, 100}, AttnCase{1, 4, 12, 160},
        // Key-tile boundary (kKB = 256): exactly one tile, one key over.
        AttnCase{1, 2, 8, 255}, AttnCase{1, 2, 8, 256},
        AttnCase{1, 2, 8, 257},
        // Several query panels x two key tiles.
        AttnCase{2, 2, 8, 320}));

TEST(FusedAttention, IncrementalDecodeMatchesReference) {
  FusedGuard guard;
  const std::int64_t heads = 2;
  const std::int64_t head_dim = 8;
  const std::int64_t hidden = heads * head_dim;
  const std::int64_t batch = 2;
  const std::int64_t capacity = 24;

  CausalSelfAttention attn("t.attn", hidden, heads);
  OwnedStorage store(attn.param_count());
  attn.bind(store.params(), store.grads());
  tensor::Rng rng(31);
  attn.init(rng);

  // Chunked prefill + decode: 5 tokens, then 1, then 3.
  const std::vector<std::int64_t> chunks = {5, 1, 3};
  std::vector<std::vector<float>> inputs;
  tensor::Rng data_rng(9);
  for (const auto n : chunks) {
    std::vector<float> x(static_cast<std::size_t>(batch * n * hidden));
    data_rng.fill_uniform(x, 1.0f);
    inputs.push_back(std::move(x));
  }

  auto run = [&](bool fused) {
    tensor::set_use_fused_attention(fused);
    KvCache cache;
    cache.k = tensor::Tensor::zeros({batch, heads, capacity, head_dim});
    cache.v = tensor::Tensor::zeros({batch, heads, capacity, head_dim});
    cache.capacity = capacity;
    std::vector<float> out;
    std::int64_t pos = 0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const std::int64_t n = chunks[i];
      BatchShape shape;
      shape.batch = batch;
      shape.seq = n;
      shape.pos_offset = pos;
      auto x = tensor::Tensor::zeros({batch * n, hidden});
      std::copy(inputs[i].begin(), inputs[i].end(), x.data());
      auto y = attn.forward_incremental(x, shape, cache);
      out.insert(out.end(), y.data(), y.data() + y.numel());
      pos += n;
    }
    EXPECT_EQ(cache.length, pos);
    return out;
  };

  const auto fused = run(true);
  const auto ref = run(false);
  sh::testing::expect_allclose(fused, ref, 1e-5f, 1e-4f);
}

// The determinism invariant, pinned with the fused kernel explicitly
// enabled: offloaded (windowed, asynchronously transferred) training is
// bit-identical to monolithic training. This holds because each (batch,
// head, panel) unit is owned by one thread and tiles accumulate in fixed
// order, independent of thread count and window size.
TEST(FusedAttention, MonoVsOffloadBitIdentical) {
  FusedGuard guard;
  tensor::set_use_fused_attention(true);

  nn::GptConfig mcfg;
  mcfg.vocab = 32;
  mcfg.max_seq = 8;
  mcfg.hidden = 16;
  mcfg.heads = 2;
  mcfg.layers = 4;

  data::SyntheticCorpus corpus(mcfg.vocab, 99);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(corpus.next_batch(2, 8));

  nn::GptModel mono_model(mcfg);
  core::MonolithicTrainer mono(mono_model, optim::AdamConfig{});
  mono.init_params(42);
  std::vector<float> mono_losses;
  for (const auto& b : batches) mono_losses.push_back(mono.train_step(b));
  std::vector<float> mono_params;
  mono.snapshot_params(mono_params);

  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);

  for (std::size_t i = 0; i < losses.size(); ++i) {
    EXPECT_EQ(losses[i], mono_losses[i]) << "loss diverged at step " << i;
  }
  sh::testing::expect_allclose(params, mono_params, 0.0f, 0.0f);
}

// Continuous batched decoding under a KV budget tight enough to force
// preempt/resume produces, with the fused decode path explicitly enabled,
// exactly the token streams of solo generation (which re-runs the same
// fused kernel at different q_rows/causal_offset splits).
TEST(FusedAttention, BatchedDecodeMatchesSoloAcrossPreemption) {
  FusedGuard guard;
  tensor::set_use_fused_attention(true);

  nn::GptConfig mcfg;
  mcfg.vocab = 32;
  mcfg.max_seq = 16;
  mcfg.hidden = 16;
  mcfg.heads = 2;
  mcfg.layers = 3;
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(17);

  auto make_requests = [] {
    std::vector<serve::Request> reqs;
    const std::vector<std::vector<std::int32_t>> prompts = {
        {3, 7}, {1}, {12, 30, 5}, {9, 0}, {4, 4, 4}, {22}};
    for (std::size_t i = 0; i < prompts.size(); ++i) {
      serve::Request r;
      r.prompt = prompts[i];
      r.max_new_tokens = 10;
      r.sampling.temperature = 0.0f;
      r.sampling.seed = 100 + i;
      reqs.push_back(r);
    }
    return reqs;
  };

  serve::SchedulerConfig scfg;
  scfg.max_batch = 6;
  scfg.arena.chunk_tokens = 4;
  scfg.arena.budget_bytes = 12000;  // tight: decoding must preempt
  serve::Scheduler sched(engine, scfg);

  std::vector<std::uint64_t> ids;
  for (auto& r : make_requests()) ids.push_back(sched.submit(r));
  sched.run_to_completion();

  EXPECT_GE(sched.arena_stats().preemptions, 1u)
      << "budget did not force a preemption; the test lost its teeth";
  EXPECT_GE(sched.arena_stats().resumes, 1u);

  const auto reqs = make_requests();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto solo =
        engine.generate_incremental(reqs[i].prompt, reqs[i].max_new_tokens);
    EXPECT_EQ(sched.result(ids[i]), solo) << "request " << i;
  }
}

}  // namespace
}  // namespace sh::nn

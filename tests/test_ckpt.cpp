// sh::ckpt — crash-consistent checkpoint/resume.
//
// Covers the commit protocol (write-temp → fsync → rename, manifest last),
// typed corruption fallback, generation GC, fault-injected checkpoint
// writes, the engine integration (periodic async snapshots, last-gasp on
// tier death, bit-identical resume), and the headline kill-and-resume chaos
// test: a child process is SIGKILLed mid-step / mid-checkpoint-write and the
// resumed run must replay the uninterrupted loss trajectory bit for bit.
#include <gtest/gtest.h>

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "data/text_corpus.hpp"
#include "nn/gpt.hpp"
#include "storage/fault_plan.hpp"
#include "testing/ckpt_chaos.hpp"
#include "testing/util.hpp"

extern char** environ;

namespace sh::ckpt {
namespace {

namespace fs = std::filesystem;

// Suffixed with the running test's name: ctest runs tests concurrently, so
// sibling tests must never share a checkpoint directory.
std::string fresh_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  if (const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    std::string suffix = std::string("_") + info->name();
    for (auto& c : suffix) {
      if (c == '/') c = '_';  // value-parameterized test names contain '/'
    }
    dir += suffix;
  }
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> entries_with_suffix(const std::string& dir,
                                             const std::string& suffix) {
  std::vector<std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      out.push_back(name);
    }
  }
  return out;
}

Snapshot make_snapshot(std::uint64_t step, float bias = 0.0f) {
  Snapshot snap;
  snap.step = step;
  for (int t = 0; t < 3; ++t) {
    TensorEntry e;
    e.name = "T" + std::to_string(t);
    e.data.resize(257 + static_cast<std::size_t>(t) * 64);
    for (std::size_t i = 0; i < e.data.size(); ++i) {
      e.data[i] = bias + static_cast<float>(t) + static_cast<float>(i) * 0.5f;
    }
    snap.tensors.push_back(std::move(e));
  }
  snap.blobs.put("meta.answer", std::uint64_t{42});
  snap.blobs.put("meta.step", step);
  return snap;
}

void expect_snapshots_equal(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.blobs.entries, b.blobs.entries);
  ASSERT_EQ(a.tensors.size(), b.tensors.size());
  for (std::size_t i = 0; i < a.tensors.size(); ++i) {
    EXPECT_EQ(a.tensors[i].name, b.tensors[i].name);
    EXPECT_EQ(a.tensors[i].data, b.tensors[i].data);
  }
}

// ---------------------------------------------------------------------------
// Data-loader cursors (satellite: save_state/load_state round trips)
// ---------------------------------------------------------------------------

TEST(DataCursor, SyntheticCorpusRoundTripReplaysBatches) {
  data::SyntheticCorpus a(32, 5);
  for (int i = 0; i < 3; ++i) a.next_batch(4, 8);
  const tensor::RngState cursor = a.save_state();
  std::vector<data::Batch> expected;
  for (int i = 0; i < 4; ++i) expected.push_back(a.next_batch(4, 8));

  data::SyntheticCorpus b(32, 5);  // same (vocab, seed): same Markov table
  b.load_state(cursor);
  for (const auto& want : expected) {
    const data::Batch got = b.next_batch(4, 8);
    EXPECT_EQ(got.ids, want.ids);
    EXPECT_EQ(got.targets, want.targets);
  }
}

TEST(DataCursor, TextCorpusRoundTripReplaysBatches) {
  auto a = data::TextCorpus::from_text(data::TextCorpus::sample_text(), 300, 3);
  for (int i = 0; i < 2; ++i) a.next_batch(2, 16);
  const tensor::RngState cursor = a.save_state();
  std::vector<data::Batch> expected;
  for (int i = 0; i < 3; ++i) expected.push_back(a.next_batch(2, 16));

  auto b = data::TextCorpus::from_text(data::TextCorpus::sample_text(), 300, 3);
  b.load_state(cursor);
  for (const auto& want : expected) {
    const data::Batch got = b.next_batch(2, 16);
    EXPECT_EQ(got.ids, want.ids);
    EXPECT_EQ(got.targets, want.targets);
  }
}

// ---------------------------------------------------------------------------
// Blobs / config plumbing
// ---------------------------------------------------------------------------

TEST(CkptBlobs, TypedErrorsOnMissingAndMisSized) {
  Blobs blobs;
  blobs.put("x", std::uint32_t{7});
  EXPECT_EQ(blobs.get<std::uint32_t>("x"), 7u);
  try {
    blobs.get<std::uint32_t>("absent");
    FAIL() << "expected RestoreError";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::MissingData);
  }
  try {
    blobs.get<std::uint64_t>("x");  // wrong width
    FAIL() << "expected RestoreError";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::GeometryMismatch);
  }
}

TEST(CkptConfig, EnvOverridesDirEveryKeep) {
  ::setenv("SH_CKPT_DIR", "/tmp/ckpt-env-test", 1);
  ::setenv("SH_CKPT_EVERY", "7", 1);
  ::setenv("SH_CKPT_KEEP", "5", 1);
  Config base;
  base.dir = "ignored";
  base.every_n_steps = 1;
  const Config cfg = config_from_env(base);
  ::unsetenv("SH_CKPT_DIR");
  ::unsetenv("SH_CKPT_EVERY");
  ::unsetenv("SH_CKPT_KEEP");
  EXPECT_EQ(cfg.dir, "/tmp/ckpt-env-test");
  EXPECT_EQ(cfg.every_n_steps, 7u);
  EXPECT_EQ(cfg.keep, 5u);
  // Without the env set, the base passes through untouched.
  const Config plain = config_from_env(base);
  EXPECT_EQ(plain.dir, "ignored");
  EXPECT_EQ(plain.every_n_steps, 1u);
}

// ---------------------------------------------------------------------------
// Checkpointer: commit, restore, GC
// ---------------------------------------------------------------------------

TEST(Checkpointer, SaveRestoreRoundTrip) {
  const std::string dir = fresh_dir("ckpt_roundtrip");
  const Snapshot snap = make_snapshot(12);
  {
    Config cfg;
    cfg.dir = dir;
    Checkpointer ck(cfg);
    ck.save_now(snap);
    EXPECT_EQ(ck.generations(), (std::vector<std::uint64_t>{12}));
    EXPECT_EQ(ck.stats().saves_committed, 1u);
    EXPECT_GE(ck.stats().bytes_written, snap.payload_bytes() / 2);
  }
  // A fresh Checkpointer (fresh process, conceptually) sees the generation.
  Config cfg;
  cfg.dir = dir;
  Checkpointer ck(cfg);
  ASSERT_EQ(ck.latest(), std::optional<std::uint64_t>{12});
  expect_snapshots_equal(ck.restore_latest(), snap);
}

TEST(Checkpointer, AsyncSaveCommitsAndKeepsStats) {
  const std::string dir = fresh_dir("ckpt_async");
  Config cfg;
  cfg.dir = dir;
  Checkpointer ck(cfg);
  ck.save_async(make_snapshot(3));
  ck.save_async(make_snapshot(6));  // joins the first, then commits
  ck.finish();
  EXPECT_EQ(ck.generations(), (std::vector<std::uint64_t>{3, 6}));
  EXPECT_EQ(ck.stats().saves_committed, 2u);
  EXPECT_EQ(ck.last_error(), "");
}

TEST(Checkpointer, GcKeepsNewestKAndSweepsTmpOrphans) {
  const std::string dir = fresh_dir("ckpt_gc");
  // Orphans from a "crashed writer": must never count as generations and be
  // swept by the next successful commit.
  std::ofstream(dir + "/gen-000000000099.data.tmp") << "partial";
  std::ofstream(dir + "/gen-000000000099.manifest.tmp") << "partial";
  Config cfg;
  cfg.dir = dir;
  cfg.keep = 2;
  Checkpointer ck(cfg);
  EXPECT_TRUE(ck.generations().empty());
  for (std::uint64_t s : {1, 2, 3, 4}) ck.save_now(make_snapshot(s));
  EXPECT_EQ(ck.generations(), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ck.stats().gc_removed, 2u);
  EXPECT_TRUE(entries_with_suffix(dir, ".tmp").empty());
  // The GC'd generations' data files are gone too.
  EXPECT_EQ(entries_with_suffix(dir, ".data").size(), 2u);
  expect_snapshots_equal(ck.restore(3), make_snapshot(3));
}

TEST(Checkpointer, GcSweepsDataFilesWithoutCommittedManifest) {
  // A writer that dies between the data rename and the manifest rename
  // leaves a final-named `.data` file with no manifest. It never counts as a
  // generation, and it must be reclaimed by the next successful commit's GC
  // — otherwise every such crash leaks a full-size data file forever.
  const std::string dir = fresh_dir("ckpt_orphan_data");
  std::ofstream(dir + "/gen-000000000099.data") << "orphaned payload";
  Config cfg;
  cfg.dir = dir;
  cfg.keep = 2;
  Checkpointer ck(cfg);
  EXPECT_TRUE(ck.generations().empty());
  ck.save_now(make_snapshot(1));
  EXPECT_EQ(ck.generations(), (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(fs::exists(dir + "/gen-000000000099.data"));
  // Committed generations keep their data files.
  EXPECT_TRUE(fs::exists(dir + "/gen-000000000001.data"));
  expect_snapshots_equal(ck.restore(1), make_snapshot(1));
}

// ---------------------------------------------------------------------------
// Corruption handling (satellite): every failure mode is a typed
// RestoreError and restore_latest falls back to the previous generation.
// ---------------------------------------------------------------------------

class CkptCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir("ckpt_corrupt");
    Config cfg;
    cfg.dir = dir_;
    cfg.keep = 4;
    ck_ = std::make_unique<Checkpointer>(cfg);
    ck_->save_now(make_snapshot(1, /*bias=*/10.0f));
    ck_->save_now(make_snapshot(2, /*bias=*/20.0f));
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  RestoreErrorKind restore_kind(std::uint64_t step) const {
    try {
      (void)ck_->restore(step);
    } catch (const RestoreError& e) {
      EXPECT_EQ(e.step(), step);
      return e.kind();
    }
    ADD_FAILURE() << "restore(" << step << ") unexpectedly succeeded";
    return RestoreErrorKind::NoValidGeneration;
  }

  void expect_fallback_to_gen1() {
    const Snapshot snap = ck_->restore_latest();
    expect_snapshots_equal(snap, make_snapshot(1, 10.0f));
  }

  std::string dir_;
  std::unique_ptr<Checkpointer> ck_;
};

TEST_F(CkptCorruption, TruncatedManifestFallsBack) {
  fs::resize_file(path("gen-000000000002.manifest"), 5);  // below even magic
  EXPECT_EQ(restore_kind(2), RestoreErrorKind::Truncated);
  expect_fallback_to_gen1();
}

TEST_F(CkptCorruption, PartiallyTruncatedManifestFailsSelfChecksum) {
  const auto full = fs::file_size(path("gen-000000000002.manifest"));
  fs::resize_file(path("gen-000000000002.manifest"), full / 2);
  EXPECT_EQ(restore_kind(2), RestoreErrorKind::ChecksumMismatch);
  expect_fallback_to_gen1();
}

TEST_F(CkptCorruption, FlippedDataByteFailsTensorChecksum) {
  std::fstream f(path("gen-000000000002.data"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(100);
  char b;
  f.seekg(100);
  f.get(b);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(100);
  f.put(b);
  f.close();
  EXPECT_EQ(restore_kind(2), RestoreErrorKind::ChecksumMismatch);
  expect_fallback_to_gen1();
}

TEST_F(CkptCorruption, MissingDataFileFallsBack) {
  fs::remove(path("gen-000000000002.data"));
  EXPECT_EQ(restore_kind(2), RestoreErrorKind::MissingFile);
  expect_fallback_to_gen1();
}

TEST_F(CkptCorruption, BadMagicIsTyped) {
  std::ofstream(path("gen-000000000002.manifest"),
                std::ios::binary | std::ios::trunc)
      << "this is not a checkpoint manifest at all, padded past the min size";
  EXPECT_EQ(restore_kind(2), RestoreErrorKind::BadMagic);
  expect_fallback_to_gen1();
}

TEST_F(CkptCorruption, TmpOnlyGenerationIsInvisible) {
  // Simulated crash between the data rename and the manifest rename: the
  // data file is committed but the manifest exists only as .tmp. The
  // generation must be invisible and the previous one restored.
  fs::rename(path("gen-000000000002.manifest"),
             path("gen-000000000002.manifest.tmp"));
  EXPECT_EQ(ck_->generations(), (std::vector<std::uint64_t>{1}));
  expect_fallback_to_gen1();
  // The next commit sweeps the orphaned tmp.
  ck_->save_now(make_snapshot(3, 30.0f));
  EXPECT_TRUE(entries_with_suffix(dir_, ".tmp").empty());
}

TEST_F(CkptCorruption, AllGenerationsCorruptIsNoValidGeneration) {
  fs::resize_file(path("gen-000000000002.manifest"), 5);
  fs::remove(path("gen-000000000001.data"));
  try {
    (void)ck_->restore_latest();
    FAIL() << "expected RestoreError";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::NoValidGeneration);
    // The message names every rejected generation.
    EXPECT_NE(std::string(e.what()).find("gen-000000000002"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("gen-000000000001"),
              std::string::npos);
  }
}

TEST(Checkpointer, EmptyDirectoryIsNoValidGeneration) {
  const std::string dir = fresh_dir("ckpt_empty");
  Config cfg;
  cfg.dir = dir;
  Checkpointer ck(cfg);
  EXPECT_EQ(ck.latest(), std::nullopt);
  try {
    (void)ck.restore_latest();
    FAIL() << "expected RestoreError";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::NoValidGeneration);
  }
}

// ---------------------------------------------------------------------------
// Fault-injected checkpoint writes (satellite): the checkpoint tier honours
// SH_FAULT_*-style fault plans; transient faults retry through, exhausted
// budgets abort without touching the previous generation.
// ---------------------------------------------------------------------------

TEST(CkptFaults, TransientWriteFaultsRecoverViaEnvPlan) {
  const std::string dir = fresh_dir("ckpt_faults_transient");
  ::setenv("SH_FAULT_RATE", "0.9", 1);
  ::setenv("SH_FAULT_SEED", "7", 1);
  ::setenv("SH_FAULT_MAX_FAULTS_PER_OP", "2", 1);
  ::setenv("SH_FAULT_MAX_ATTEMPTS", "6", 1);
  ::setenv("SH_FAULT_BACKOFF_S", "0.00001", 1);
  storage::FaultConfig base;
  base.latency_weight = 0.0;  // keep the test fast: shorts + errors only
  base.fault_reads = false;
  Config cfg;
  cfg.dir = dir;
  // Deliberate: SH_FAULT_* does NOT overlay the checkpoint tier implicitly
  // (checkpoints usually target a healthier device than the tier under
  // test); the plan is opted in explicitly.
  cfg.faults = storage::fault_config_from_env(base);
  ::unsetenv("SH_FAULT_RATE");
  ::unsetenv("SH_FAULT_SEED");
  ::unsetenv("SH_FAULT_MAX_FAULTS_PER_OP");
  ::unsetenv("SH_FAULT_MAX_ATTEMPTS");
  ::unsetenv("SH_FAULT_BACKOFF_S");
  EXPECT_DOUBLE_EQ(cfg.faults.rate, 0.9);

  Checkpointer ck(cfg);
  const Snapshot snap = make_snapshot(4);
  ck.save_now(snap);  // transient write faults retry through
  expect_snapshots_equal(ck.restore_latest(), snap);
}

TEST(CkptFaults, ExhaustedBudgetAbortsWithoutCorruptingPreviousGeneration) {
  const std::string dir = fresh_dir("ckpt_faults_dead");
  const Snapshot gen1 = make_snapshot(1, 5.0f);
  {
    Config healthy;
    healthy.dir = dir;
    Checkpointer ck(healthy);
    ck.save_now(gen1);
  }

  Config cfg;
  cfg.dir = dir;
  cfg.faults.rate = 1.0;
  cfg.faults.latency_weight = 0.0;
  cfg.faults.short_weight = 0.0;
  cfg.faults.fault_reads = false;
  cfg.faults.max_faults_per_op = std::numeric_limits<std::size_t>::max();
  cfg.faults.max_attempts = 2;
  cfg.faults.backoff_initial_s = 1e-5;
  Checkpointer ck(cfg);
  EXPECT_THROW(ck.save_now(make_snapshot(2)), storage::IoError);
  // Aborted cleanly: previous generation intact, temp files unlinked.
  EXPECT_EQ(ck.generations(), (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(entries_with_suffix(dir, ".tmp").empty());
  expect_snapshots_equal(ck.restore_latest(), gen1);

  // The asynchronous path records the failure instead of throwing.
  ck.save_async(make_snapshot(3));
  ck.finish();
  EXPECT_EQ(ck.stats().saves_failed, 2u);
  EXPECT_NE(ck.last_error(), "");
  EXPECT_EQ(ck.generations(), (std::vector<std::uint64_t>{1}));
}

// ---------------------------------------------------------------------------
// Engine integration: periodic async snapshots, resume bit-identity,
// last-gasp on tier death.
// ---------------------------------------------------------------------------

using sh::testing::ckpt_chaos::tiny_config;

struct TrainRun {
  std::vector<float> losses;
  std::vector<float> params;
  std::size_t iterations = 0;
};

/// Trains `steps` steps from scratch (or from the latest generation when
/// `resume` and one exists), wiring the data-loader cursor into snapshots
/// via the extra_save/extra_load hooks.
TrainRun run_engine(const nn::GptConfig& mcfg, core::EngineConfig ecfg,
                    int steps, bool resume = false,
                    std::uint64_t corpus_seed = 9) {
  data::SyntheticCorpus corpus(mcfg.vocab, corpus_seed);
  ecfg.ckpt_extra_save = [&corpus](Blobs& b) {
    b.put("data.cursor", corpus.save_state());
  };
  ecfg.ckpt_extra_load = [&corpus](const Blobs& b) {
    corpus.load_state(b.get<tensor::RngState>("data.cursor"));
  };
  nn::GptModel model(mcfg);
  core::StrongholdEngine engine(model, std::move(ecfg));
  engine.init_params(42);
  int start = 0;
  if (resume && engine.resume_from_latest()) {
    start = static_cast<int>(engine.stats().iterations);
  }
  TrainRun run;
  for (int i = start; i < steps; ++i) {
    run.losses.push_back(engine.train_step(corpus.next_batch(2, mcfg.max_seq)));
  }
  engine.snapshot_params(run.params);
  run.iterations = engine.stats().iterations;
  return run;
}

TEST(EngineCkpt, PeriodicAsyncSnapshotThenResumeIsBitIdentical) {
  const auto mcfg = tiny_config();
  core::EngineConfig base;
  base.window = 2;

  const TrainRun ref = run_engine(mcfg, base, 8);  // uninterrupted

  core::EngineConfig ck = base;
  ck.ckpt.dir = fresh_dir("ckpt_engine_resume");
  ck.ckpt.every_n_steps = 4;
  const TrainRun before = run_engine(mcfg, ck, 6);  // commits gen-4, "dies"
  ASSERT_EQ(before.iterations, 6u);

  const TrainRun after = run_engine(mcfg, ck, 8, /*resume=*/true);
  // Resumed at step 4: replays steps 5..8 bit-identically — same losses,
  // same final parameters as the run that never stopped.
  ASSERT_EQ(after.losses.size(), 4u);
  for (std::size_t i = 0; i < after.losses.size(); ++i) {
    EXPECT_EQ(after.losses[i], ref.losses[4 + i]) << "step " << 5 + i;
  }
  sh::testing::expect_allclose(after.params, ref.params, 0.0f, 0.0f);
  EXPECT_EQ(after.iterations, 8u);
}

TEST(EngineCkpt, MidAccumulationCycleSnapshotResumesBitIdentical) {
  // every_n_steps=3 with grad_accumulation=2 snapshots BETWEEN optimizer
  // updates: the CPU-side gradient accumulators are part of the state.
  const auto mcfg = tiny_config();
  core::EngineConfig base;
  base.window = 2;
  base.grad_accumulation = 2;

  const TrainRun ref = run_engine(mcfg, base, 8);

  core::EngineConfig ck = base;
  ck.ckpt.dir = fresh_dir("ckpt_engine_midcycle");
  ck.ckpt.every_n_steps = 3;
  (void)run_engine(mcfg, ck, 5);  // gen-3 committed mid-cycle
  const TrainRun after = run_engine(mcfg, ck, 8, /*resume=*/true);
  ASSERT_EQ(after.losses.size(), 5u)
      << "expected resume from the mid-cycle generation at step 3";
  for (std::size_t i = 0; i < after.losses.size(); ++i) {
    EXPECT_EQ(after.losses[i], ref.losses[3 + i]) << "step " << 4 + i;
  }
  sh::testing::expect_allclose(after.params, ref.params, 0.0f, 0.0f);
}

TEST(EngineCkpt, Fp16ResumeRestoresLossScalerState) {
  const auto mcfg = tiny_config();
  core::EngineConfig base;
  base.window = 2;
  base.fp16 = true;
  base.loss_scaler.initial_scale = 256.0f;
  base.loss_scaler.growth_interval = 3;  // force scaler dynamics in-run

  const TrainRun ref = run_engine(mcfg, base, 8);

  core::EngineConfig ck = base;
  ck.ckpt.dir = fresh_dir("ckpt_engine_fp16");
  ck.ckpt.every_n_steps = 4;
  (void)run_engine(mcfg, ck, 6);
  const TrainRun after = run_engine(mcfg, ck, 8, /*resume=*/true);
  ASSERT_EQ(after.losses.size(), 4u);
  for (std::size_t i = 0; i < after.losses.size(); ++i) {
    EXPECT_EQ(after.losses[i], ref.losses[4 + i]) << "step " << 5 + i;
  }
  sh::testing::expect_allclose(after.params, ref.params, 0.0f, 0.0f);
}

TEST(EngineCkpt, ResumeFromLatestReturnsFalseOnEmptyDirectory) {
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.ckpt.dir = fresh_dir("ckpt_engine_none");
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(1);
  EXPECT_FALSE(engine.resume_from_latest());
  EXPECT_NE(engine.checkpointer(), nullptr);
}

TEST(EngineCkpt, GeometryMismatchIsTyped) {
  const auto mcfg = tiny_config();
  const std::string dir = fresh_dir("ckpt_engine_geom");
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.ckpt.dir = dir;
  {
    nn::GptModel model(mcfg);
    core::StrongholdEngine engine(model, ecfg);
    engine.init_params(1);
    engine.checkpoint_now();
  }
  auto bigger = mcfg;
  bigger.layers = 6;  // different geometry
  nn::GptModel model(bigger);
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(1);
  try {
    (void)engine.resume_from_latest();
    FAIL() << "expected RestoreError";
  } catch (const RestoreError& e) {
    EXPECT_EQ(e.kind(), RestoreErrorKind::GeometryMismatch);
  }
}

TEST(EngineCkpt, EnvEnablesCheckpointingWithoutConfig) {
  const std::string dir = fresh_dir("ckpt_engine_env");
  ::setenv("SH_CKPT_DIR", dir.c_str(), 1);
  ::setenv("SH_CKPT_EVERY", "2", 1);
  const auto mcfg = tiny_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  ::unsetenv("SH_CKPT_DIR");
  ::unsetenv("SH_CKPT_EVERY");
  ASSERT_NE(engine.checkpointer(), nullptr);
  engine.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 2);
  for (int i = 0; i < 2; ++i) engine.train_step(corpus.next_batch(2, 8));
  engine.checkpointer()->finish();
  EXPECT_EQ(engine.checkpointer()->generations(),
            (std::vector<std::uint64_t>{2}));
}

// --- last-gasp on swap-tier death -----------------------------------------

TEST(EngineLastGasp, FailedWriteBackCommitsSnapshotAtConsistentBoundary) {
  // A tier write that exhausts its (single-attempt) budget fails the layer's
  // fire-and-forget write-back; the latched IoError surfaces at a step
  // boundary, where the masters are coherent — the engine must take a fresh
  // last-gasp capture that reflects the RAM masters exactly (the tier's
  // stale regions must not leak in) and commit it before rethrowing.
  //
  // The fault plan is a seeded pure function, so we search for a seed whose
  // plan lets init_params' synchronous tier writes through but faults a
  // later write-back. With rate 0.1 roughly every third seed qualifies.
  const auto mcfg = tiny_config();
  bool exercised = false;
  for (std::uint64_t seed = 0; seed < 64 && !exercised; ++seed) {
    const std::string tag = std::to_string(seed);
    const std::string dir = fresh_dir("ckpt_lastgasp_w" + tag);
    core::EngineConfig ecfg;
    ecfg.window = 1;
    ecfg.cpu_capacity_bytes = 64 * 1024;
    ecfg.swap_path = ::testing::TempDir() + "lastgasp_swap_" + tag + ".bin";
    ecfg.swap_faults.rate = 0.1;
    ecfg.swap_faults.seed = seed;
    ecfg.swap_faults.latency_weight = 0.0;
    ecfg.swap_faults.short_weight = 0.0;
    ecfg.swap_faults.fault_reads = false;
    ecfg.swap_faults.max_faults_per_op =
        std::numeric_limits<std::size_t>::max();
    ecfg.swap_faults.max_attempts = 1;  // one faulted attempt = op failed
    ecfg.ckpt.dir = dir;

    nn::GptModel model(mcfg);
    core::StrongholdEngine engine(model, ecfg);
    try {
      engine.init_params(42);
    } catch (const storage::IoError&) {
      continue;  // plan faulted an init write; try the next seed
    }
    EXPECT_GT(engine.stats().swap_backed_layers, 0u);

    data::SyntheticCorpus corpus(mcfg.vocab, 9);
    std::size_t completed = 0;
    try {
      for (int i = 0; i < 6; ++i) {
        engine.train_step(corpus.next_batch(2, mcfg.max_seq));
        // Let this step's write-back failure latch BEFORE the next step
        // starts — a subsequent step would fault stale tier data back into
        // the masters and pollute the capture.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
      continue;  // no write faulted within the horizon; next seed
    } catch (const storage::IoError&) {
      // Reads are healthy and in-body rethrows are wrapper-owned for ckpt
      // engines, so the IoError can only have surfaced at a consistent
      // boundary — after the body finished (iterations counted) — with a
      // committed last-gasp generation at exactly that iteration.
      completed = engine.stats().iterations;
      ASSERT_GE(completed, 1u) << "seed " << seed;
      ASSERT_EQ(engine.stats().ckpt_last_gasp, 1u) << "seed " << seed;
      ASSERT_NE(engine.checkpointer(), nullptr);
      ASSERT_EQ(engine.checkpointer()->generations(),
                (std::vector<std::uint64_t>{completed}))
          << "seed " << seed;
    }

    // The generation must equal a healthy run of the same `completed` steps,
    // bit for bit: restore into a healthy engine and compare.
    std::vector<float> want;
    {
      nn::GptModel ref_model(mcfg);
      core::EngineConfig healthy;
      healthy.window = 2;
      core::StrongholdEngine reference(ref_model, healthy);
      reference.init_params(42);
      data::SyntheticCorpus ref_corpus(mcfg.vocab, 9);
      for (std::size_t i = 0; i < completed; ++i) {
        reference.train_step(ref_corpus.next_batch(2, mcfg.max_seq));
      }
      reference.snapshot_params(want);
    }
    nn::GptModel res_model(mcfg);
    core::EngineConfig resume_cfg;
    resume_cfg.window = 2;
    resume_cfg.ckpt.dir = dir;
    core::StrongholdEngine resumed(res_model, resume_cfg);
    resumed.init_params(7);  // overwritten by the restore
    ASSERT_TRUE(resumed.resume_from_latest());
    EXPECT_EQ(resumed.stats().iterations, completed);
    std::vector<float> got;
    resumed.snapshot_params(got);
    sh::testing::expect_allclose(got, want, 0.0f, 0.0f);
    exercised = true;
  }
  ASSERT_TRUE(exercised)
      << "no fault seed in [0,64) exercised the last-gasp write path";
}

TEST(EngineLastGasp, MidStepFaultNeverCommitsTornState) {
  // Dead READS surface mid-step (inside the fetch), where masters may be
  // torn between micro-updates: the last-gasp path must only finish an
  // in-flight staged save — never capture fresh — so nothing gets committed
  // here, and that is the correct outcome.
  const auto mcfg = tiny_config();
  const std::string dir = fresh_dir("ckpt_lastgasp_read");
  core::EngineConfig ecfg;
  ecfg.window = 1;
  ecfg.cpu_capacity_bytes = 64 * 1024;
  ecfg.swap_path = ::testing::TempDir() + "ckpt_lastgasp_swap_r.bin";
  ecfg.swap_faults.rate = 1.0;
  ecfg.swap_faults.latency_weight = 0.0;
  ecfg.swap_faults.short_weight = 0.0;
  ecfg.swap_faults.fault_writes = false;  // init_params can seed the tier
  ecfg.swap_faults.max_faults_per_op = std::numeric_limits<std::size_t>::max();
  ecfg.swap_faults.max_attempts = 2;
  ecfg.swap_faults.backoff_initial_s = 1e-5;
  ecfg.ckpt.dir = dir;

  data::SyntheticCorpus corpus(mcfg.vocab, 9);
  nn::GptModel model(mcfg);
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  EXPECT_THROW(engine.train_step(corpus.next_batch(2, mcfg.max_seq)),
               storage::IoError);
  EXPECT_EQ(engine.stats().ckpt_last_gasp, 1u);
  ASSERT_NE(engine.checkpointer(), nullptr);
  EXPECT_TRUE(engine.checkpointer()->generations().empty());
}

// ---------------------------------------------------------------------------
// Kill-and-resume chaos test (headline): a child process training with
// periodic checkpoints is SIGKILLed at an arbitrary instant — including
// mid-checkpoint-write in the throttled variant — and a resumed run must
// replay the uninterrupted trajectory bit for bit.
// ---------------------------------------------------------------------------

constexpr int kChaosHorizon = 64;  // reference steps (child is killed early)

using sh::testing::ckpt_chaos::chaos_config;

/// The victim lives in its own non-gtest binary (ckpt_chaos_child, built
/// from tests/ckpt_chaos_child.cpp against the same testing/ckpt_chaos.hpp
/// configs) and sits next to this test binary in the build tree.
std::string child_binary_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "ckpt_chaos_child";
  buf[n] = '\0';
  return (fs::path(buf).parent_path() / "ckpt_chaos_child").string();
}

class KillAndResume : public ::testing::TestWithParam<double> {};

TEST_P(KillAndResume, ResumesBitIdenticalAfterSigkill) {
  const double throttle = GetParam();
  const std::string dir =
      fresh_dir(throttle > 0.0 ? "ckpt_kill_throttled" : "ckpt_kill_fast");
  const auto mcfg = tiny_config();

  // Reference: the uninterrupted trajectory, computed in-process.
  const TrainRun ref =
      run_engine(mcfg, chaos_config("", 0.0), kChaosHorizon);

  // Spawn the victim (the standalone ckpt_chaos_child binary).
  ::setenv("SH_CKPT_CHILD_DIR", dir.c_str(), 1);
  if (throttle > 0.0) {
    ::setenv("SH_CKPT_CHILD_THROTTLE", std::to_string(throttle).c_str(), 1);
  }
  const std::string exe = child_binary_path();
  const char* argv[] = {"ckpt_chaos_child", nullptr};
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr,
                               const_cast<char* const*>(argv), environ);
  ::unsetenv("SH_CKPT_CHILD_DIR");
  ::unsetenv("SH_CKPT_CHILD_THROTTLE");
  ASSERT_EQ(rc, 0) << "posix_spawn failed";

  // Wait for at least one committed generation, then let the child get a
  // little further so the SIGKILL lands at an arbitrary point of a later
  // step — with a throttled checkpoint tier, most likely mid-write of the
  // NEXT generation's data file.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(90);
  while (entries_with_suffix(dir, ".manifest").empty()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "child never committed a generation";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(throttle > 0.0 ? 120 : 40));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of being killed";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Resume in-process: restore the newest valid generation (skipping any
  // half-written one), replay to the horizon, compare bit for bit.
  data::SyntheticCorpus corpus(mcfg.vocab, 9);
  core::EngineConfig ecfg = chaos_config(dir, 0.0);
  ecfg.ckpt_extra_load = [&corpus](const Blobs& b) {
    corpus.load_state(b.get<tensor::RngState>("data.cursor"));
  };
  nn::GptModel model(mcfg);
  core::StrongholdEngine engine(model, std::move(ecfg));
  engine.init_params(42);
  ASSERT_TRUE(engine.resume_from_latest());
  const auto resumed_at = engine.stats().iterations;
  ASSERT_GE(resumed_at, 2u);
  ASSERT_LT(resumed_at, static_cast<std::size_t>(kChaosHorizon))
      << "child outran the reference horizon; raise kChaosHorizon";
  ASSERT_EQ(resumed_at % 2, 0u) << "generation off the checkpoint cadence";

  for (auto i = resumed_at; i < static_cast<std::size_t>(kChaosHorizon); ++i) {
    const float loss = engine.train_step(corpus.next_batch(2, mcfg.max_seq));
    EXPECT_EQ(loss, ref.losses[i]) << "diverged at step " << i + 1
                                   << " after resuming from " << resumed_at;
  }
  std::vector<float> params;
  engine.snapshot_params(params);
  sh::testing::expect_allclose(params, ref.params, 0.0f, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Chaos, KillAndResume,
                         ::testing::Values(0.0, /*mid-write bias:*/ 1.5e6),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param > 0.0 ? "ThrottledTier"
                                                   : "FastTier";
                         });

}  // namespace
}  // namespace sh::ckpt

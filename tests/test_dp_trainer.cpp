// Data-parallel training across rank replicas (Section VI-D2 mechanism):
// every rank runs a full STRONGHOLD engine; gradients all-reduce through the
// heterogeneous channels; replicas must stay in lockstep.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "dist/dp_trainer.hpp"
#include "testing/util.hpp"

namespace sh::dist {
namespace {

nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

TEST(DataParallel, ReplicasStayBitIdentical) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, /*world=*/2);
  trainer.init_params(42);
  data::SyntheticCorpus corpus(mcfg.vocab, 99);
  for (int i = 0; i < 3; ++i) {
    trainer.train_step(corpus.next_batch(4, mcfg.max_seq));
  }
  std::vector<float> p0, p1;
  trainer.snapshot_params(0, p0);
  trainer.snapshot_params(1, p1);
  sh::testing::expect_allclose(p0, p1, 0.0f, 0.0f);
}

TEST(DataParallel, MatchesSingleEngineOnGlobalBatch) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 99);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(corpus.next_batch(4, mcfg.max_seq));

  // Reference: one engine trains the full global batch.
  nn::GptModel ref_model(mcfg);
  core::EngineConfig ref_cfg;
  ref_cfg.window = 2;
  core::StrongholdEngine ref(ref_model, ref_cfg);
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  // Two data-parallel ranks, two samples each.
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 2);
  trainer.init_params(42);
  std::vector<float> dp_losses;
  for (const auto& b : batches) dp_losses.push_back(trainer.train_step(b));
  std::vector<float> dp_params;
  trainer.snapshot_params(0, dp_params);

  for (std::size_t i = 0; i < ref_losses.size(); ++i) {
    EXPECT_NEAR(dp_losses[i], ref_losses[i], 1e-5f);
  }
  // Sharded loss/grad averaging reorders float sums: tight but not bitwise.
  sh::testing::expect_allclose(dp_params, ref_params, 1e-5f, 1e-4f);
}

TEST(DataParallel, FourRanksConverge) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 3e-3f;
  DataParallelTrainer trainer(mcfg, ecfg, 4);
  trainer.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 5);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 40; ++i) {
    last = trainer.train_step(corpus.next_batch(8, mcfg.max_seq));
    if (i == 0) first = last;
  }
  EXPECT_LT(last, first);
  EXPECT_GT(trainer.floats_communicated(), 0u);
}

TEST(DataParallel, CommunicatesEveryLayerEveryStep) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  const int world = 2;
  DataParallelTrainer trainer(mcfg, ecfg, world);
  trainer.init_params(3);
  data::SyntheticCorpus corpus(mcfg.vocab, 7);
  trainer.train_step(corpus.next_batch(2, mcfg.max_seq));
  // Paper convention volume: (w-1) * w * params per all-reduce, every layer
  // unit all-reduced once per step.
  nn::GptModel probe(mcfg);
  const auto expected = static_cast<std::size_t>(world * (world - 1)) *
                        static_cast<std::size_t>(probe.total_params());
  EXPECT_EQ(trainer.floats_communicated(), expected);
}

TEST(DataParallel, WorldOfOneDegeneratesToSingleEngine) {
  const auto mcfg = tiny_config();
  const data::Batch batch = data::SyntheticCorpus(mcfg.vocab, 2).next_batch(
      2, mcfg.max_seq);

  nn::GptModel ref_model(mcfg);
  core::EngineConfig rcfg;
  rcfg.window = 2;
  core::StrongholdEngine ref(ref_model, rcfg);
  ref.init_params(8);
  const float ref_loss = ref.train_step(batch);

  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 1);
  trainer.init_params(8);
  EXPECT_EQ(trainer.train_step(batch), ref_loss);
  std::vector<float> a, b;
  ref.snapshot_params(a);
  trainer.snapshot_params(0, b);
  sh::testing::expect_allclose(b, a, 0.0f, 0.0f);
}

TEST(DataParallel, RejectsIndivisibleGlobalBatch) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 2);
  trainer.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 1);
  EXPECT_THROW(trainer.train_step(corpus.next_batch(3, mcfg.max_seq)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sh::dist

// Data-parallel training across rank replicas (Section VI-D2 mechanism):
// every rank runs a full STRONGHOLD engine; gradients all-reduce through the
// heterogeneous channels; replicas must stay in lockstep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "dist/dp_trainer.hpp"
#include "testing/util.hpp"

namespace sh::dist {
namespace {

nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

TEST(DataParallel, ReplicasStayBitIdentical) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, /*world=*/2);
  trainer.init_params(42);
  data::SyntheticCorpus corpus(mcfg.vocab, 99);
  for (int i = 0; i < 3; ++i) {
    trainer.train_step(corpus.next_batch(4, mcfg.max_seq));
  }
  std::vector<float> p0, p1;
  trainer.snapshot_params(0, p0);
  trainer.snapshot_params(1, p1);
  sh::testing::expect_allclose(p0, p1, 0.0f, 0.0f);
}

TEST(DataParallel, MatchesSingleEngineOnGlobalBatch) {
  const auto mcfg = tiny_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 99);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(corpus.next_batch(4, mcfg.max_seq));

  // Reference: one engine trains the full global batch.
  nn::GptModel ref_model(mcfg);
  core::EngineConfig ref_cfg;
  ref_cfg.window = 2;
  core::StrongholdEngine ref(ref_model, ref_cfg);
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  // Two data-parallel ranks, two samples each.
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 2);
  trainer.init_params(42);
  std::vector<float> dp_losses;
  for (const auto& b : batches) dp_losses.push_back(trainer.train_step(b));
  std::vector<float> dp_params;
  trainer.snapshot_params(0, dp_params);

  for (std::size_t i = 0; i < ref_losses.size(); ++i) {
    EXPECT_NEAR(dp_losses[i], ref_losses[i], 1e-5f);
  }
  // Sharded loss/grad averaging reorders float sums: tight but not bitwise.
  sh::testing::expect_allclose(dp_params, ref_params, 1e-5f, 1e-4f);
}

TEST(DataParallel, FourRanksConverge) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 3e-3f;
  DataParallelTrainer trainer(mcfg, ecfg, 4);
  trainer.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 5);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 40; ++i) {
    last = trainer.train_step(corpus.next_batch(8, mcfg.max_seq));
    if (i == 0) first = last;
  }
  EXPECT_LT(last, first);
  EXPECT_GT(trainer.floats_communicated(), 0u);
}

TEST(DataParallel, CommunicatesEveryLayerEveryStep) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  const int world = 2;
  DataParallelTrainer trainer(mcfg, ecfg, world);
  trainer.init_params(3);
  data::SyntheticCorpus corpus(mcfg.vocab, 7);
  trainer.train_step(corpus.next_batch(2, mcfg.max_seq));
  // Paper convention volume: (w-1) * w * params per all-reduce, every layer
  // unit all-reduced once per step.
  nn::GptModel probe(mcfg);
  const auto expected = static_cast<std::size_t>(world * (world - 1)) *
                        static_cast<std::size_t>(probe.total_params());
  EXPECT_EQ(trainer.floats_communicated(), expected);
}

TEST(DataParallel, WorldOfOneDegeneratesToSingleEngine) {
  const auto mcfg = tiny_config();
  const data::Batch batch = data::SyntheticCorpus(mcfg.vocab, 2).next_batch(
      2, mcfg.max_seq);

  nn::GptModel ref_model(mcfg);
  core::EngineConfig rcfg;
  rcfg.window = 2;
  core::StrongholdEngine ref(ref_model, rcfg);
  ref.init_params(8);
  const float ref_loss = ref.train_step(batch);

  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 1);
  trainer.init_params(8);
  EXPECT_EQ(trainer.train_step(batch), ref_loss);
  std::vector<float> a, b;
  ref.snapshot_params(a);
  trainer.snapshot_params(0, b);
  sh::testing::expect_allclose(b, a, 0.0f, 0.0f);
}

// --- world-size matrix (ISSUE: push the test matrix to 8 ranks) ----------

class DataParallelScale : public ::testing::TestWithParam<int> {};

TEST_P(DataParallelScale, ReplicasStayBitIdenticalAcrossWorldSizes) {
  const int world = GetParam();
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, world);
  trainer.init_params(42);
  data::SyntheticCorpus corpus(mcfg.vocab, 99);
  for (int i = 0; i < 3; ++i) {
    trainer.train_step(corpus.next_batch(8, mcfg.max_seq));
  }
  EXPECT_EQ(trainer.current_step(), 3u);
  std::vector<float> p0;
  trainer.snapshot_params(0, p0);
  for (int r = 1; r < world; ++r) {
    std::vector<float> pr;
    trainer.snapshot_params(r, pr);
    sh::testing::expect_allclose(pr, p0, 0.0f, 0.0f);
  }
  if (world > 1) {
    EXPECT_GT(trainer.floats_communicated(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, DataParallelScale,
                         ::testing::Values(1, 2, 4, 8),
                         ::testing::PrintToStringParamName());

// --- elasticity + checkpoint/resume ---------------------------------------

std::string fresh_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  if (const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    dir += std::string("_") + info->name();
  }
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<data::Batch> make_batches(const nn::GptConfig& mcfg, int n) {
  data::SyntheticCorpus corpus(mcfg.vocab, 99);
  std::vector<data::Batch> batches;
  for (int i = 0; i < n; ++i) batches.push_back(corpus.next_batch(8, mcfg.max_seq));
  return batches;
}

/// Uninterrupted world-`world` run over `batches`: the reference every
/// elastic/resumed run must match bit for bit (replicas of the SAME world
/// are bitwise; only cross-world comparisons reassociate float sums).
struct DpReference {
  std::vector<float> losses;
  std::vector<float> params;
};

DpReference run_reference(const nn::GptConfig& mcfg,
                          const std::vector<data::Batch>& batches, int world) {
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, world);
  trainer.init_params(42);
  DpReference ref;
  for (const auto& b : batches) ref.losses.push_back(trainer.train_step(b));
  trainer.snapshot_params(0, ref.params);
  return ref;
}

TEST(DataParallelElastic, RankLeavesAndRejoinsFromManifestBitIdentically) {
  // Eight ranks; one leaves and rejoins at a checkpoint-cadence step
  // boundary, so the joiner seeds from the committed generation (durable
  // state, not a live peer). The full run must match an uninterrupted
  // world-8 run bit for bit — elastic re-sharding is deterministic.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(mcfg, 4);
  const DpReference ref = run_reference(mcfg, batches, 8);

  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.ckpt.dir = fresh_dir("dp_elastic_manifest");
  ecfg.ckpt.every_n_steps = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 8);
  trainer.init_params(42);
  std::vector<float> losses;
  losses.push_back(trainer.train_step(batches[0]));
  losses.push_back(trainer.train_step(batches[1]));  // gen-2 staged async

  trainer.remove_rank(3);
  EXPECT_EQ(trainer.world(), 7);
  const int joined = trainer.add_rank();  // finishes gen-2 -> manifest path
  EXPECT_EQ(trainer.world(), 8);
  EXPECT_EQ(joined, 7);
  ASSERT_NE(trainer.checkpointer(), nullptr);
  EXPECT_EQ(trainer.checkpointer()->latest(),
            std::optional<std::uint64_t>{2});

  losses.push_back(trainer.train_step(batches[2]));
  losses.push_back(trainer.train_step(batches[3]));

  for (std::size_t i = 0; i < losses.size(); ++i) {
    EXPECT_EQ(losses[i], ref.losses[i]) << "step " << i + 1;
  }
  for (int r = 0; r < trainer.world(); ++r) {
    std::vector<float> pr;
    trainer.snapshot_params(r, pr);
    sh::testing::expect_allclose(pr, ref.params, 0.0f, 0.0f);
  }
}

TEST(DataParallelElastic, RankRejoinsFromLivePeerWithoutCheckpoints) {
  // No checkpoint directory: the joiner seeds from a live snapshot of rank 0
  // (the mid-interval fallback). Same bit-identity requirement.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(mcfg, 4);
  const DpReference ref = run_reference(mcfg, batches, 8);

  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 8);
  trainer.init_params(42);
  std::vector<float> losses;
  losses.push_back(trainer.train_step(batches[0]));

  trainer.remove_rank(0);  // even rank 0 (the capture source) may leave
  trainer.add_rank();
  EXPECT_EQ(trainer.world(), 8);

  for (int i = 1; i < 4; ++i) losses.push_back(trainer.train_step(batches[i]));
  for (std::size_t i = 0; i < losses.size(); ++i) {
    EXPECT_EQ(losses[i], ref.losses[i]) << "step " << i + 1;
  }
  for (int r = 0; r < trainer.world(); ++r) {
    std::vector<float> pr;
    trainer.snapshot_params(r, pr);
    sh::testing::expect_allclose(pr, ref.params, 0.0f, 0.0f);
  }
}

TEST(DataParallelElastic, WorldShrinksAndRegrowsAcrossSteps) {
  // Train at world 8, shrink to 4 (batch re-shards over fewer ranks), grow
  // back to 8 — replicas stay bitwise identical throughout.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(mcfg, 6);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 8);
  trainer.init_params(42);
  trainer.train_step(batches[0]);
  trainer.train_step(batches[1]);
  for (int i = 0; i < 4; ++i) trainer.remove_rank(0);
  EXPECT_EQ(trainer.world(), 4);
  trainer.train_step(batches[2]);
  trainer.train_step(batches[3]);
  for (int i = 0; i < 4; ++i) trainer.add_rank();
  EXPECT_EQ(trainer.world(), 8);
  trainer.train_step(batches[4]);
  trainer.train_step(batches[5]);
  EXPECT_EQ(trainer.current_step(), 6u);
  std::vector<float> p0;
  trainer.snapshot_params(0, p0);
  for (int r = 1; r < trainer.world(); ++r) {
    std::vector<float> pr;
    trainer.snapshot_params(r, pr);
    sh::testing::expect_allclose(pr, p0, 0.0f, 0.0f);
  }
}

TEST(DataParallelElastic, RemoveRankRejectsEmptyWorldAndBadIndex) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 2);
  trainer.init_params(1);
  EXPECT_THROW(trainer.remove_rank(5), std::out_of_range);
  trainer.remove_rank(1);
  EXPECT_THROW(trainer.remove_rank(0), std::invalid_argument);
}

TEST(DataParallelCkpt, TrainerResumesFromCheckpointBitIdentically) {
  // A new trainer process (fresh trainer object) resumes every rank from the
  // trainer-owned checkpoint and replays the remaining steps bit for bit.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(mcfg, 4);
  const DpReference ref = run_reference(mcfg, batches, 4);

  const std::string dir = fresh_dir("dp_resume");
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.ckpt.dir = dir;
  ecfg.ckpt.every_n_steps = 2;
  {
    DataParallelTrainer trainer(mcfg, ecfg, 4);
    trainer.init_params(42);
    for (int i = 0; i < 3; ++i) trainer.train_step(batches[i]);
    // dies after step 3; the durable generation is step 2
  }

  DataParallelTrainer resumed(mcfg, ecfg, 4);
  resumed.init_params(7);  // overwritten by the restore
  ASSERT_TRUE(resumed.resume_from_latest());
  EXPECT_EQ(resumed.current_step(), 2u);
  std::vector<float> losses;
  for (int i = 2; i < 4; ++i) losses.push_back(resumed.train_step(batches[i]));
  EXPECT_EQ(losses[0], ref.losses[2]);
  EXPECT_EQ(losses[1], ref.losses[3]);
  for (int r = 0; r < resumed.world(); ++r) {
    std::vector<float> pr;
    resumed.snapshot_params(r, pr);
    sh::testing::expect_allclose(pr, ref.params, 0.0f, 0.0f);
  }
}

TEST(DataParallelElastic, AddRankFallsBackToLivePeerOnCorruptGeneration) {
  // The newest generation matches the join step but fails verification; the
  // joiner must fall back to the live rank-0 snapshot instead of failing the
  // elastic join, and the run stays bit-identical to the uninterrupted one.
  const auto mcfg = tiny_config();
  const auto batches = make_batches(mcfg, 4);
  const DpReference ref = run_reference(mcfg, batches, 8);

  core::EngineConfig ecfg;
  ecfg.window = 2;
  const std::string dir = fresh_dir("dp_elastic_corrupt");
  ecfg.ckpt.dir = dir;
  ecfg.ckpt.every_n_steps = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 8);
  trainer.init_params(42);
  std::vector<float> losses;
  losses.push_back(trainer.train_step(batches[0]));
  losses.push_back(trainer.train_step(batches[1]));  // gen-2 staged async
  trainer.checkpointer()->finish();

  {
    // Flip bytes mid-payload: restore(2) now fails its tensor checksum.
    std::fstream f(dir + "/gen-000000000002.data",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(64);
    const char junk[4] = {0x7f, 0x7f, 0x7f, 0x7f};
    f.write(junk, sizeof junk);
  }

  trainer.remove_rank(3);
  const int joined = trainer.add_rank();  // must not throw
  EXPECT_EQ(joined, 7);
  EXPECT_EQ(trainer.world(), 8);
  losses.push_back(trainer.train_step(batches[2]));
  losses.push_back(trainer.train_step(batches[3]));
  for (std::size_t i = 0; i < losses.size(); ++i) {
    EXPECT_EQ(losses[i], ref.losses[i]) << "step " << i + 1;
  }
  for (int r = 0; r < trainer.world(); ++r) {
    std::vector<float> pr;
    trainer.snapshot_params(r, pr);
    sh::testing::expect_allclose(pr, ref.params, 0.0f, 0.0f);
  }
}

TEST(DataParallelCkpt, EnvConfiguredTrainerKeepsSingleWriter) {
  // SH_CKPT_DIR is the documented no-code-change way to enable
  // checkpointing. The trainer resolves the env overrides once; the rank
  // engines must NOT re-apply them in their own constructors, or every rank
  // would open the trainer's directory as a concurrent writer and race the
  // rename-commit protocol (shared gen-<step> temp names, each commit's GC
  // sweeping the others' in-flight files).
  const std::string dir = fresh_dir("dp_env_single_writer");
  ::setenv("SH_CKPT_DIR", dir.c_str(), 1);
  ::setenv("SH_CKPT_EVERY", "1", 1);
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 2);
  ::unsetenv("SH_CKPT_DIR");
  ::unsetenv("SH_CKPT_EVERY");
  ASSERT_NE(trainer.checkpointer(), nullptr);
  trainer.init_params(42);
  for (const auto& b : make_batches(mcfg, 2)) trainer.train_step(b);
  trainer.checkpointer()->finish();
  // Only the trainer captures snapshots (always on rank 0); a non-zero
  // count on rank 1 means an engine built its own env-configured
  // Checkpointer behind the trainer's back.
  EXPECT_GT(trainer.stats(0).ckpt_snapshots, 0u);
  EXPECT_EQ(trainer.stats(1).ckpt_snapshots, 0u);
  EXPECT_EQ(trainer.checkpointer()->stats().saves_failed, 0u);
  EXPECT_EQ(trainer.checkpointer()->latest(), std::optional<std::uint64_t>{2});
  EXPECT_TRUE(trainer.resume_from_latest());
}

TEST(DataParallelCkpt, ResumeFromLatestFalseWithoutGenerations) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.ckpt.dir = fresh_dir("dp_resume_none");
  DataParallelTrainer trainer(mcfg, ecfg, 2);
  trainer.init_params(1);
  EXPECT_FALSE(trainer.resume_from_latest());
  EXPECT_THROW(DataParallelTrainer(mcfg, core::EngineConfig{}, 2)
                   .save_checkpoint(),
               std::logic_error);
}

TEST(DataParallel, RejectsIndivisibleGlobalBatch) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg;
  ecfg.window = 2;
  DataParallelTrainer trainer(mcfg, ecfg, 2);
  trainer.init_params(1);
  data::SyntheticCorpus corpus(mcfg.vocab, 1);
  EXPECT_THROW(trainer.train_step(corpus.next_batch(3, mcfg.max_seq)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sh::dist

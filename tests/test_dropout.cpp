// Deterministic counter-based dropout, and its interaction with activation
// checkpointing, offloading and executor splitting.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "core/monolithic.hpp"
#include "data/synthetic.hpp"
#include "tensor/dropout.hpp"
#include "testing/util.hpp"

namespace sh {
namespace {

TEST(Dropout, ZeroProbabilityIsIdentity) {
  std::vector<float> in = {1, 2, 3, 4};
  std::vector<float> out(4);
  tensor::dropout_forward(in.data(), out.data(), 4, 0.0f, 1, 2, 3, 0);
  EXPECT_EQ(out, in);
}

TEST(Dropout, MaskIsDeterministic) {
  std::vector<float> in(512, 1.0f);
  std::vector<float> a(512), b(512);
  tensor::dropout_forward(in.data(), a.data(), 512, 0.3f, 7, 1, 5, 0);
  tensor::dropout_forward(in.data(), b.data(), 512, 0.3f, 7, 1, 5, 0);
  EXPECT_EQ(a, b);
}

TEST(Dropout, DifferentStepsAndStreamsGiveDifferentMasks) {
  std::vector<float> in(512, 1.0f);
  std::vector<float> a(512), b(512), c(512);
  tensor::dropout_forward(in.data(), a.data(), 512, 0.5f, 7, 1, 5, 0);
  tensor::dropout_forward(in.data(), b.data(), 512, 0.5f, 7, 1, 6, 0);
  tensor::dropout_forward(in.data(), c.data(), 512, 0.5f, 7, 2, 5, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Dropout, GlobalOffsetSplicesConsistently) {
  // Computing [0, n) in one call must equal computing [0, h) and [h, n) in
  // two calls with the right offsets — the executor-split property.
  std::vector<float> in(256, 1.0f);
  std::vector<float> whole(256), first(128), second(128);
  tensor::dropout_forward(in.data(), whole.data(), 256, 0.4f, 9, 3, 2, 0);
  tensor::dropout_forward(in.data(), first.data(), 128, 0.4f, 9, 3, 2, 0);
  tensor::dropout_forward(in.data(), second.data(), 128, 0.4f, 9, 3, 2, 128);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(whole[static_cast<std::size_t>(i)], first[static_cast<std::size_t>(i)]);
    EXPECT_EQ(whole[static_cast<std::size_t>(i + 128)],
              second[static_cast<std::size_t>(i)]);
  }
}

TEST(Dropout, KeepRateApproximatelyCorrect) {
  const std::int64_t n = 20000;
  std::vector<float> in(static_cast<std::size_t>(n), 1.0f);
  std::vector<float> out(static_cast<std::size_t>(n));
  const float p = 0.25f;
  tensor::dropout_forward(in.data(), out.data(), n, p, 11, 0, 0, 0);
  int kept = 0;
  for (float v : out) {
    if (v != 0.0f) {
      EXPECT_NEAR(v, 1.0f / (1.0f - p), 1e-6f);  // inverted scaling
      ++kept;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / n, 1.0 - p, 0.02);
}

TEST(Dropout, BackwardAppliesSameMask) {
  const std::int64_t n = 256;
  std::vector<float> in(static_cast<std::size_t>(n), 1.0f);
  std::vector<float> fwd(static_cast<std::size_t>(n));
  std::vector<float> gin(static_cast<std::size_t>(n));
  tensor::dropout_forward(in.data(), fwd.data(), n, 0.5f, 3, 4, 5, 10);
  tensor::dropout_backward(in.data(), gin.data(), n, 0.5f, 3, 4, 5, 10);
  EXPECT_EQ(fwd, gin);  // identical mask, identical scaling of ones
}

nn::GptConfig dropout_config(bool checkpoint = false) {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.dropout = 0.2f;
  cfg.checkpoint_activations = checkpoint;
  return cfg;
}

TEST(DropoutTraining, OffloadedMatchesMonolithicBitwise) {
  const auto mcfg = dropout_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 70);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(corpus.next_batch(2, mcfg.max_seq));

  nn::GptModel ref_model(mcfg);
  core::MonolithicTrainer ref(ref_model, optim::AdamConfig{});
  ref.init_params(42);
  std::vector<float> ref_losses;
  for (const auto& b : batches) ref_losses.push_back(ref.train_step(b));
  std::vector<float> ref_params;
  ref.snapshot_params(ref_params);

  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(42);
  std::vector<float> losses;
  for (const auto& b : batches) losses.push_back(engine.train_step(b));
  std::vector<float> params;
  engine.snapshot_params(params);
  EXPECT_EQ(losses, ref_losses);
  sh::testing::expect_allclose(params, ref_params, 0.0f, 0.0f);
}

TEST(DropoutTraining, CheckpointRecomputationReproducesMasks) {
  // With activation checkpointing the block re-runs forward inside backward;
  // a stateful RNG would draw a different mask and corrupt gradients. The
  // counter-based masks make checkpointed == non-checkpointed exactly.
  const auto plain_cfg = dropout_config(false);
  const auto ckpt_cfg = dropout_config(true);
  data::SyntheticCorpus corpus(plain_cfg.vocab, 71);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(corpus.next_batch(2, plain_cfg.max_seq));

  auto run = [&](const nn::GptConfig& cfg) {
    nn::GptModel model(cfg);
    core::EngineConfig ecfg;
    ecfg.window = 2;
    core::StrongholdEngine engine(model, ecfg);
    engine.init_params(42);
    for (const auto& b : batches) engine.train_step(b);
    std::vector<float> p;
    engine.snapshot_params(p);
    return p;
  };
  sh::testing::expect_allclose(run(ckpt_cfg), run(plain_cfg), 0.0f, 0.0f);
}

TEST(DropoutTraining, ExecutorSplitDrawsConsistentMasks) {
  const auto mcfg = dropout_config();
  data::SyntheticCorpus corpus(mcfg.vocab, 72);
  std::vector<data::Batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(corpus.next_batch(4, mcfg.max_seq));

  auto run = [&](std::size_t executors) {
    nn::GptModel model(mcfg);
    core::EngineConfig ecfg;
    ecfg.window = 2;
    ecfg.num_executors = executors;
    core::StrongholdEngine engine(model, ecfg);
    engine.init_params(42);
    for (const auto& b : batches) engine.train_step(b);
    std::vector<float> p;
    engine.snapshot_params(p);
    return p;
  };
  // Masks are identical; only float-summation order differs.
  sh::testing::expect_allclose(run(2), run(1), 1e-5f, 1e-4f);
}

TEST(DropoutTraining, InferenceDisablesDropout) {
  const auto mcfg = dropout_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(9);
  data::SyntheticCorpus corpus(mcfg.vocab, 73);
  const auto batch = corpus.next_batch(1, mcfg.max_seq);
  const nn::BatchShape shape{1, mcfg.max_seq};
  auto a = engine.inference(batch.ids, shape).clone();
  auto b = engine.inference(batch.ids, shape);
  // Inference is deterministic (no dropout): two passes agree exactly.
  sh::testing::expect_allclose(a.span(), b.span(), 0.0f, 0.0f);
}

TEST(DropoutTraining, StillConverges) {
  const auto mcfg = dropout_config();
  nn::GptModel model(mcfg);
  core::EngineConfig ecfg;
  ecfg.window = 2;
  ecfg.adam.lr = 3e-3f;
  core::StrongholdEngine engine(model, ecfg);
  engine.init_params(3);
  data::SyntheticCorpus corpus(mcfg.vocab, 74);
  std::vector<float> losses;
  for (int i = 0; i < 120; ++i) {
    losses.push_back(engine.train_step(corpus.next_batch(4, mcfg.max_seq)));
  }
  auto mean = [&](int lo, int hi) {
    return std::accumulate(losses.begin() + lo, losses.begin() + hi, 0.0f) /
           static_cast<float>(hi - lo);
  };
  EXPECT_LT(mean(110, 120), mean(0, 10) * 0.9f);
}

}  // namespace
}  // namespace sh

#pragma once
// Shared fixture for the kill-and-resume chaos tests. The victim binary
// (ckpt_chaos_child, SIGKILLed by the parent) and test_ckpt's in-process
// reference run must build their engines from IDENTICAL model/engine
// configs, or the resumed trajectory cannot replay the reference bit for
// bit. Keeping both sides in one header makes drift a compile-time
// impossibility rather than a flaky-test mystery.
#include <chrono>
#include <string>
#include <thread>

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "nn/gpt.hpp"

namespace sh::testing::ckpt_chaos {

inline nn::GptConfig tiny_config() {
  nn::GptConfig cfg;
  cfg.vocab = 32;
  cfg.max_seq = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  return cfg;
}

inline core::EngineConfig chaos_config(const std::string& dir,
                                       double ckpt_bytes_per_second) {
  core::EngineConfig cfg;
  cfg.window = 2;
  cfg.ckpt.dir = dir;
  cfg.ckpt.every_n_steps = 2;
  cfg.ckpt.keep = 2;
  cfg.ckpt.bytes_per_second = ckpt_bytes_per_second;
  return cfg;
}

/// The victim's training loop: checkpoints periodically and trains
/// "forever" — the parent SIGKILLs at an arbitrary instant, including
/// mid-checkpoint-write when the tier is throttled.
inline void train_until_killed(const std::string& dir, double throttle) {
  const auto mcfg = tiny_config();
  core::EngineConfig ecfg = chaos_config(dir, throttle);
  data::SyntheticCorpus corpus(mcfg.vocab, 9);
  ecfg.ckpt_extra_save = [&corpus](ckpt::Blobs& b) {
    b.put("data.cursor", corpus.save_state());
  };
  nn::GptModel model(mcfg);
  core::StrongholdEngine engine(model, std::move(ecfg));
  engine.init_params(42);
  for (;;) {
    engine.train_step(corpus.next_batch(2, mcfg.max_seq));
    // Pace the loop so the parent's SIGKILL lands well inside the reference
    // horizon; numerically a pure no-op.
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
}

}  // namespace sh::testing::ckpt_chaos

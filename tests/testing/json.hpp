// Minimal JSON parser for structural validation in tests (no third-party
// dependency). Supports the full value grammar the repo's exporters emit:
// objects, arrays, strings with escapes, numbers, booleans, null. Throws
// std::runtime_error with a byte offset on malformed input.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace sh::testing {

struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool is_object() const noexcept { return type == Type::Object; }
  bool is_array() const noexcept { return type == Type::Array; }
  bool is_string() const noexcept { return type == Type::String; }
  bool is_number() const noexcept { return type == Type::Number; }

  bool contains(const std::string& key) const {
    return type == Type::Object && object.count(key) > 0;
  }
  const Json& at(const std::string& key) const {
    if (!contains(key)) throw std::runtime_error("Json: missing key " + key);
    return object.at(key);
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json parse error at byte " +
                             std::to_string(i_) + ": " + what);
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(i_, w.size(), w) == 0) {
      i_ += w.size();
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    Json v;
    switch (peek()) {
      case '{': {
        v.type = Json::Type::Object;
        expect('{');
        skip_ws();
        if (peek() == '}') { ++i_; return v; }
        for (;;) {
          skip_ws();
          Json key = string_value();
          skip_ws();
          expect(':');
          v.object[key.str] = value();
          skip_ws();
          if (peek() == ',') { ++i_; continue; }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = Json::Type::Array;
        expect('[');
        skip_ws();
        if (peek() == ']') { ++i_; return v; }
        for (;;) {
          v.array.push_back(value());
          skip_ws();
          if (peek() == ',') { ++i_; continue; }
          expect(']');
          return v;
        }
      }
      case '"':
        return string_value();
      case 't':
        if (!literal("true")) fail("bad literal");
        v.type = Json::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) fail("bad literal");
        v.type = Json::Type::Bool;
        return v;
      case 'n':
        if (!literal("null")) fail("bad literal");
        return v;
      default:
        return number_value();
    }
  }

  Json string_value() {
    Json v;
    v.type = Json::Type::String;
    expect('"');
    while (peek() != '"') {
      char c = s_[i_++];
      if (c != '\\') {
        v.str += c;
        continue;
      }
      switch (peek()) {
        case '"': v.str += '"'; ++i_; break;
        case '\\': v.str += '\\'; ++i_; break;
        case '/': v.str += '/'; ++i_; break;
        case 'n': v.str += '\n'; ++i_; break;
        case 't': v.str += '\t'; ++i_; break;
        case 'r': v.str += '\r'; ++i_; break;
        case 'b': v.str += '\b'; ++i_; break;
        case 'f': v.str += '\f'; ++i_; break;
        case 'u': {
          ++i_;
          if (i_ + 4 > s_.size()) fail("bad \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16));
          i_ += 4;
          // The exporters only \u-escape control characters (< 0x20).
          v.str += static_cast<char>(code);
          break;
        }
        default:
          fail("bad escape");
      }
    }
    ++i_;
    return v;
  }

  Json number_value() {
    Json v;
    v.type = Json::Type::Number;
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    v.number = std::strtod(start, &end);
    if (end == start) fail("bad number");
    i_ += static_cast<std::size_t>(end - start);
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace detail

inline Json parse_json(const std::string& text) {
  return detail::JsonParser(text).parse();
}

}  // namespace sh::testing

// Shared test helpers: finite-difference gradient checking and tensor
// comparison utilities.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "nn/module.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace sh::testing {

inline void expect_allclose(std::span<const float> a, std::span<const float> b,
                            float atol = 1e-5f, float rtol = 1e-4f) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float tol = atol + rtol * std::abs(b[i]);
    ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

/// Scalar projection loss L = sum_i y_i * w_i with fixed random weights —
/// turns any layer output into a scalar for finite-difference checks.
struct ProjectionLoss {
  std::vector<float> w;

  explicit ProjectionLoss(std::int64_t n, std::uint64_t seed = 7) {
    w.resize(static_cast<std::size_t>(n));
    tensor::Rng rng(seed);
    rng.fill_uniform(w, 1.0f);
  }

  float value(const tensor::Tensor& y) const {
    return tensor::dot(y.data(), w.data(), y.numel());
  }

  tensor::Tensor grad(const tensor::Shape& shape) const {
    auto g = tensor::Tensor::zeros(shape);
    std::copy(w.begin(), w.end(), g.data());
    return g;
  }
};

/// Checks the analytic gradient of `loss_fn` (a function of the entries of
/// `x`) against central finite differences.
inline void check_gradient(std::span<float> x, std::span<const float> analytic,
                           const std::function<float()>& loss_fn,
                           float eps = 1e-3f, float atol = 2e-3f,
                           float rtol = 5e-2f) {
  ASSERT_EQ(x.size(), analytic.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = loss_fn();
    x[i] = orig - eps;
    const float lm = loss_fn();
    x[i] = orig;
    const double numeric = (static_cast<double>(lp) - lm) / (2.0 * eps);
    const double tol = atol + rtol * std::abs(numeric);
    EXPECT_NEAR(analytic[i], numeric, tol) << "gradient mismatch at " << i;
  }
}

}  // namespace sh::testing

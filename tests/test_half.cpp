// IEEE binary16 conversion correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/half.hpp"
#include "tensor/rng.hpp"

namespace sh::tensor {
namespace {

TEST(Half, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.0f, 1024.0f, 0.25f,
                  -0.125f, 65504.0f, 1.5f, 3.140625f}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << "value " << v;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000);
  EXPECT_EQ(float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half(1.0f), 0x3c00);
  EXPECT_EQ(float_to_half(-1.0f), 0xbc00);
  EXPECT_EQ(float_to_half(2.0f), 0x4000);
  EXPECT_EQ(float_to_half(65504.0f), 0x7bff);  // max finite
  EXPECT_EQ(half_to_float(0x3c00), 1.0f);
  EXPECT_EQ(half_to_float(0x7c00), std::numeric_limits<float>::infinity());
}

TEST(Half, OverflowBecomesInfinity) {
  EXPECT_EQ(half_to_float(float_to_half(65536.0f)),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(half_to_float(float_to_half(-1e9f)),
            -std::numeric_limits<float>::infinity());
}

TEST(Half, InfinityAndNanPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_to_float(float_to_half(inf)), inf);
  EXPECT_EQ(half_to_float(float_to_half(-inf)), -inf);
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(NAN))));
}

TEST(Half, SubnormalsRoundTrip) {
  // Smallest positive fp16 subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(half_to_float(float_to_half(tiny)), tiny);
  // Largest subnormal: (1023/1024) * 2^-14.
  const float big_sub = 1023.0f / 1024.0f * std::ldexp(1.0f, -14);
  EXPECT_EQ(half_to_float(float_to_half(big_sub)), big_sub);
  // Below half the smallest subnormal: flush to zero.
  EXPECT_EQ(half_to_float(float_to_half(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Half, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16 value
  // (1 + 2^-10); ties go to even (1.0, whose mantissa LSB is 0).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(half_to_float(float_to_half(halfway)), 1.0f);
  // Just above halfway rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -20);
  EXPECT_EQ(half_to_float(float_to_half(above)), 1.0f + std::ldexp(1.0f, -10));
  // 1 + 3*2^-11 is halfway between 1+2^-10 (odd mantissa) and 1+2^-9: even
  // is the upper value.
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(half_to_float(float_to_half(halfway2)),
            1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, RoundTripIsIdempotent) {
  Rng rng(5);
  std::vector<float> vals(2000);
  rng.fill_normal(vals, 10.0f);
  for (float v : vals) {
    const float once = half_to_float(float_to_half(v));
    const float twice = half_to_float(float_to_half(once));
    EXPECT_EQ(once, twice);
    // Relative error of one rounding is at most 2^-11 for normal values.
    if (std::abs(v) > 1e-4f) {
      EXPECT_LE(std::abs(once - v), std::abs(v) * 0.0005f);
    }
  }
}

TEST(Half, BulkConversionsMatchScalar) {
  Rng rng(6);
  std::vector<float> src(257);
  rng.fill_uniform(src, 100.0f);
  std::vector<half> h(src.size());
  std::vector<float> back(src.size());
  convert_to_half(src.data(), h.data(), src.size());
  convert_to_float(h.data(), back.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(back[i], half_to_float(float_to_half(src[i])));
  }
  std::vector<float> inplace = src;
  quantize_fp16_inplace(inplace.data(), inplace.size());
  EXPECT_EQ(inplace, back);
}

TEST(Half, NonFiniteDetection) {
  std::vector<float> ok = {1.0f, -2.0f, 100.0f};
  EXPECT_FALSE(has_non_finite_fp16(ok.data(), ok.size()));
  std::vector<float> overflow = {1.0f, 1e6f};  // 1e6 > fp16 max
  EXPECT_TRUE(has_non_finite_fp16(overflow.data(), overflow.size()));
  std::vector<float> nan = {NAN};
  EXPECT_TRUE(has_non_finite_fp16(nan.data(), nan.size()));
}

}  // namespace
}  // namespace sh::tensor
